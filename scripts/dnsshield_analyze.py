#!/usr/bin/env python3
"""dnsshield AST analyzer: semantic upgrades of the regex lint rules.

Where scripts/dnsshield_lint.py matches tokens, this tool parses every
translation unit through libclang (python `clang.cindex`), driven by the
compile_commands.json the build already exports. Working on the AST means
the rules resolve through typedefs/using-declarations and never fire on
comments or string literals — the two failure modes a regex linter cannot
escape.

Rules
  mutable-global-state  Non-const namespace-scope variables and
                        function-local `static` mutable variables in the
                        simulation layers. Any such slot is shared mutable
                        state that can couple replicates and break
                        bit-reproducibility. Allowlisted: the allocation
                        counters and the audit-handler slot (file-level
                        allowlist below, each entry justified).
  hot-path-purity       Functions annotated DNSSHIELD_HOT
                        (src/sim/annotations.h) must not contain
                        new-expressions, construct std::function, or
                        create locals/temporaries of allocating std
                        containers/strings — the compile-time form of the
                        0-allocs/op guards in bench/micro_benchmarks.cpp.
  wall-clock            AST port of the regex rule: host clock types
                        (std::chrono system/steady/high_resolution —
                        caught through any typedef) and C time functions.
  randomness            AST port: std engines by canonical type (so
                        `using Twister = std::mt19937` is caught),
                        std::random_device, C rand/srand family.
  float-time            AST port: any declaration, member, parameter, or
                        return of type `float` (canonical, so
                        typedef-laundered floats are caught).
  io                    AST port: std::cout/std::cerr references and
                        printf-family calls in library code.
  threads               AST port: std::thread/jthread by canonical type,
                        std::async calls, and thread::detach().

Exit status: 0 clean (or libclang unavailable: SKIP notice, so callers
fall back to the regex linter), 1 findings, 2 usage/internal error.
With --require-libclang a missing libclang is an error (CI uses this).

Usage
  scripts/dnsshield_analyze.py -p build              # scan src/ TUs
  scripts/dnsshield_analyze.py -p build --sarif out.sarif
  scripts/dnsshield_analyze.py --list-rules
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_ANNOTATION = "dnsshield::hot"

# Layers the mutable-global rule covers (the simulation kernel proper;
# metrics/trace sinks are replicate-owned objects, not globals).
SIM_LAYERS = (
    "src/sim/",
    "src/dns/",
    "src/resolver/",
    "src/server/",
    "src/attack/",
    "src/core/",
)

# std templates whose construction implies heap allocation. Matched
# against canonical type spellings with inline namespaces normalized, so
# std::string, std::__cxx11::basic_string, and any typedef of either all
# hit "std::basic_string<". (Map/set iterators canonicalize to internal
# __detail/__tree types and deliberately do NOT match.)
ALLOCATING_STD_PREFIXES = (
    "std::function<",
    "std::basic_string<",
    "std::vector<",
    "std::deque<",
    "std::list<",
    "std::forward_list<",
    "std::map<",
    "std::multimap<",
    "std::set<",
    "std::multiset<",
    "std::unordered_map<",
    "std::unordered_multimap<",
    "std::unordered_set<",
    "std::unordered_multiset<",
    "std::basic_stringstream<",
    "std::basic_ostringstream<",
    "std::basic_istringstream<",
)

CLOCK_TYPE_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)\b")
ENGINE_TYPE_RE = re.compile(
    r"std::(mersenne_twister_engine|linear_congruential_engine|"
    r"subtract_with_carry_engine|discard_block_engine|"
    r"shuffle_order_engine|independent_bits_engine|random_device)\b")
FLOAT_RE = re.compile(r"(?<![\w])float(?![\w])")
THREAD_TYPE_RE = re.compile(r"std::(thread|jthread)\b")

C_TIME_FUNCTIONS = frozenset({
    "time", "gettimeofday", "clock_gettime", "clock", "localtime", "gmtime",
    "mktime", "strftime", "ctime", "localtime_r", "gmtime_r", "ctime_r",
    "localtime_s", "gmtime_s", "ctime_s", "timespec_get",
})
C_RAND_FUNCTIONS = frozenset({"rand", "srand", "random", "srandom",
                              "drand48", "lrand48", "mrand48", "srand48"})
C_IO_FUNCTIONS = frozenset({"printf", "fprintf", "puts", "fputs", "putchar",
                            "fputc", "perror", "vprintf", "vfprintf"})


def normalize_type(spelling):
    """Strips the std inline namespaces (libstdc++ __cxx11, libc++ __1,
    gcc chrono _V2) so prefix/regex matching is library-agnostic."""
    return re.sub(r"std::(__cxx11|__1|_V2)::", "std::", spelling)


class Rule:
    def __init__(self, name, description, allowlist=(), applies_to=("src/",),
                 hint=""):
        self.name = name
        self.description = description
        self.allowlist = frozenset(allowlist)
        self.applies_to = tuple(applies_to)
        self.hint = hint

    def covers(self, path):
        return path.startswith(self.applies_to) and path not in self.allowlist


RULES = {
    "mutable-global-state": Rule(
        "mutable-global-state",
        "mutable namespace-scope or function-local static variable in the "
        "simulation layers (shared mutable state breaks replicate "
        "hermeticity and bit-reproducibility)",
        allowlist=(
            # Global new/delete interposition counters: process-wide by
            # nature (atomics, relaxed), read only by the benchmark guards.
            "src/sim/alloc_counter.cpp",
            "src/sim/alloc_hook.cpp",
            # The audit failure handler slot: mutex-guarded
            # (DNSSHIELD_GUARDED_BY), installed serially at test setup.
            "src/sim/audit.cpp",
        ),
        applies_to=SIM_LAYERS,
        hint="pass state through the simulation objects; if it truly must "
        "be global, guard it and allowlist it here with a justification",
    ),
    "hot-path-purity": Rule(
        "hot-path-purity",
        "allocation in a DNSSHIELD_HOT function (new-expression, "
        "std::function construction, or an allocating std "
        "container/string local or temporary)",
        hint="hot paths reuse scratch buffers / InplaceCallback; move the "
        "allocation to setup code or drop the DNSSHIELD_HOT annotation",
    ),
    "wall-clock": Rule(
        "wall-clock",
        "wall-clock time source (resolved through typedefs) in simulation "
        "code; all time flows from sim::SimTime via the event queue",
        hint="derive every timestamp from sim::SimTime / EventQueue::now()",
    ),
    "randomness": Rule(
        "randomness",
        "ambient randomness (std engine / random_device / C rand family, "
        "resolved through typedefs); use the explicitly seeded sim::Rng",
        hint="draw from sim::Rng (seed it; derive streams with derive_seed)",
    ),
    "float-time": Rule(
        "float-time",
        "`float` (canonical type) in library code; simulated-time "
        "arithmetic must use the double-based types from src/sim/time.h",
        hint="use sim::SimTime / sim::Duration (or double) instead",
    ),
    "io": Rule(
        "io",
        "direct console output in library code (metrics/tracer sinks and "
        "driver binaries only)",
        allowlist=(
            # The audit failure handler prints the failing invariant right
            # before the process aborts; no report stream exists to corrupt.
            "src/sim/audit.cpp",
        ),
        hint="return strings / write through metrics sinks; printing is "
        "the drivers' job",
    ),
    "threads": Rule(
        "threads",
        "raw threading (std::thread/jthread/async/detach, resolved through "
        "typedefs) outside the deterministic runner",
        allowlist=(
            # The deterministic parallel runner IS the sanctioned home of
            # std::thread; everything else uses its ThreadPool.
            "src/sim/parallel.h",
            "src/sim/parallel.cpp",
        ),
        hint="use sim::ThreadPool / sim::parallel_map (src/sim/parallel.h)",
    ),
}


# ---- libclang loading -------------------------------------------------------


def load_cindex():
    """Imports clang.cindex and verifies the native library loads.

    Returns the module, or None (with a reason printed) when the python
    bindings or libclang.so are unavailable — callers then SKIP and fall
    back to the regex linter.
    """
    try:
        from clang import cindex
    except ImportError as e:
        print(f"dnsshield_analyze: python clang bindings unavailable ({e})")
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # noqa: BLE001 - LibclangError type varies by version
        pass
    # Retry against well-known sonames (distro python3-clang often needs
    # an explicit library file).
    candidates = []
    found = shutil.which("llvm-config")
    if found:
        try:
            libdir = subprocess.run(
                [found, "--libdir"], capture_output=True, text=True,
                check=True).stdout.strip()
            candidates.append(os.path.join(libdir, "libclang.so"))
        except (OSError, subprocess.SubprocessError):
            pass
    for ver in range(21, 10, -1):
        candidates.append(f"libclang-{ver}.so.1")
        candidates.append(f"libclang.so.{ver}")
    candidates.append("libclang.so")
    for lib in candidates:
        try:
            cindex.Config.library_file = None
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001
            continue
    print("dnsshield_analyze: libclang shared library not loadable")
    return None


def resource_dir_args():
    """Builtin headers (stddef.h & co). When a clang driver is installed
    its resource dir is authoritative; otherwise trust libclang's own."""
    clang_bin = shutil.which("clang") or shutil.which("clang++")
    if clang_bin is None:
        return []
    try:
        out = subprocess.run([clang_bin, "-print-resource-dir"],
                             capture_output=True, text=True, check=True)
        rd = out.stdout.strip()
        return ["-resource-dir", rd] if rd else []
    except (OSError, subprocess.SubprocessError):
        return []


# ---- compile_commands handling ---------------------------------------------

# Only flags that affect parsing survive; everything else (codegen flags,
# gcc-only warnings) is dropped so a gcc-generated database parses
# cleanly under libclang.
_KEEP_PREFIX = ("-I", "-D", "-U", "-std=")
_KEEP_WITH_ARG = ("-isystem", "-include", "-isysroot", "-iquote")


def parse_args_for_tu(command, fallback_args):
    """Extracts parse-relevant flags from one compile command."""
    if isinstance(command, str):
        tokens = shlex.split(command)
    else:
        tokens = list(command)
    kept = []
    i = 1  # token 0 is the compiler
    while i < len(tokens):
        tok = tokens[i]
        if tok.startswith(_KEEP_PREFIX):
            kept.append(tok)
            if tok in ("-I", "-D", "-U") and i + 1 < len(tokens):
                i += 1
                kept.append(tokens[i])
        elif tok in _KEEP_WITH_ARG:
            kept.append(tok)
            if i + 1 < len(tokens):
                i += 1
                kept.append(tokens[i])
        i += 1
    if not any(t.startswith("-std=") for t in kept):
        kept.append("-std=c++20")
    return kept + fallback_args


def load_compile_commands(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"dnsshield_analyze: no compile_commands.json in {build_dir} "
              "(configure the build first: cmake -B build -S .)",
              file=sys.stderr)
        sys.exit(2)
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


# ---- the analysis -----------------------------------------------------------


class Analyzer:
    def __init__(self, cindex, root):
        self.cindex = cindex
        self.root = os.path.abspath(root)
        self.index = cindex.Index.create()
        self.findings = set()  # (path, line, rule_name, message)
        self.hot_usrs = set()
        self._ck = cindex.CursorKind
        self._tk = cindex.TypeKind

    # -- helpers --

    def rel(self, path):
        return os.path.relpath(os.path.abspath(path),
                               self.root).replace(os.sep, "/")

    def in_scope(self, cursor):
        """True when the cursor's spelling location is a file under the
        analysis root (filters out system headers)."""
        loc = cursor.location
        if loc.file is None:
            return None
        rel = self.rel(loc.file.name)
        if rel.startswith(".."):
            return None
        return rel

    def add(self, rule_name, cursor, message, path=None):
        rule = RULES[rule_name]
        if path is None:
            path = self.in_scope(cursor)
        if path is None or not rule.covers(path):
            return
        self.findings.add((path, cursor.location.line, rule_name, message))

    def canonical_type(self, type_obj):
        try:
            return normalize_type(type_obj.get_canonical().spelling)
        except Exception:  # noqa: BLE001 - defensive: bindings vary
            return ""

    def is_reference_or_pointer(self, type_obj):
        kind = type_obj.get_canonical().kind
        return kind in (self._tk.LVALUEREFERENCE, self._tk.RVALUEREFERENCE,
                        self._tk.POINTER)

    def is_foreign(self, cursor):
        """True for declarations outside the analysis root (std/system),
        so calls to the project's own `find`/`clock`-named functions never
        fire the C-library rules."""
        if cursor is None:
            return False
        loc = cursor.location
        if loc.file is None:
            return True
        return self.rel(loc.file.name).startswith("..")

    def has_hot_annotation(self, cursor):
        ck = self._ck
        for decl in (cursor, cursor.canonical):
            if decl is None:
                continue
            for child in decl.get_children():
                if (child.kind == ck.ANNOTATE_ATTR
                        and child.spelling == HOT_ANNOTATION):
                    return True
        return False

    # -- per-node rule checks --

    def check_global_state(self, cursor):
        ck = self._ck
        if cursor.kind != ck.VAR_DECL or not cursor.is_definition():
            return
        parent = cursor.semantic_parent
        if parent is None:
            return
        at_namespace_scope = parent.kind in (ck.NAMESPACE, ck.TRANSLATION_UNIT)
        sc = cursor.storage_class
        is_local_static = (
            not at_namespace_scope
            and parent.kind not in (ck.CLASS_DECL, ck.STRUCT_DECL,
                                    ck.CLASS_TEMPLATE, ck.UNION_DECL)
            and sc == self.cindex.StorageClass.STATIC)
        if not at_namespace_scope and not is_local_static:
            return
        type_obj = cursor.type.get_canonical()
        if type_obj.is_const_qualified():
            return
        where = ("namespace-scope" if at_namespace_scope
                 else "function-local static")
        self.add("mutable-global-state", cursor,
                 f"{where} mutable variable `{cursor.spelling}` of type "
                 f"`{normalize_type(type_obj.spelling)}`")

    def check_types(self, cursor):
        """Typedef-resolving type checks (wall-clock clocks, std engines,
        float, std::thread) on declarations, calls, and type aliases."""
        ck = self._ck
        kind = cursor.kind
        spellings = []
        if kind in (ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL):
            spellings.append(self.canonical_type(cursor.type))
        elif kind in (ck.TYPEDEF_DECL, ck.TYPE_ALIAS_DECL):
            try:
                spellings.append(normalize_type(
                    cursor.underlying_typedef_type.get_canonical().spelling))
            except Exception:  # noqa: BLE001
                pass
        elif kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.FUNCTION_TEMPLATE):
            spellings.append(self.canonical_type(cursor.result_type))
        elif kind == ck.CALL_EXPR:
            ref = cursor.referenced
            if ref is not None:
                spellings.append(self.canonical_type(ref.result_type))
        for spelling in spellings:
            if not spelling:
                continue
            if CLOCK_TYPE_RE.search(spelling):
                self.add("wall-clock", cursor,
                         f"host clock type in `{spelling}`")
            if ENGINE_TYPE_RE.search(spelling):
                self.add("randomness", cursor,
                         f"std random engine/device in `{spelling}`")
            if FLOAT_RE.search(spelling):
                self.add("float-time", cursor, f"`float` in `{spelling}`")
            if THREAD_TYPE_RE.search(spelling):
                self.add("threads", cursor,
                         f"std thread type in `{spelling}`")

    def check_calls(self, cursor):
        ck = self._ck
        if cursor.kind == ck.DECL_REF_EXPR:
            ref = cursor.referenced
            if (ref is not None and ref.spelling in ("cout", "cerr", "wcout",
                                                     "wcerr")
                    and self.is_foreign(ref)):
                self.add("io", cursor, f"std::{ref.spelling} reference")
            return
        if cursor.kind != ck.CALL_EXPR:
            return
        ref = cursor.referenced
        if ref is None or not self.is_foreign(ref):
            return
        name = ref.spelling
        if name in C_TIME_FUNCTIONS:
            self.add("wall-clock", cursor, f"C time function `{name}()`")
        elif name in C_RAND_FUNCTIONS:
            self.add("randomness", cursor, f"C random function `{name}()`")
        elif name in C_IO_FUNCTIONS:
            self.add("io", cursor, f"printf-family call `{name}()`")
        elif name == "async":
            parent = ref.semantic_parent
            if parent is not None and parent.spelling == "std":
                self.add("threads", cursor, "std::async call")
        elif name == "detach":
            parent = ref.semantic_parent
            if parent is not None and parent.spelling in ("thread", "jthread"):
                self.add("threads", cursor, f"{parent.spelling}::detach()")

    # -- hot-path purity --

    def allocating_prefix(self, spelling):
        for prefix in ALLOCATING_STD_PREFIXES:
            if spelling.startswith(prefix):
                return prefix.rstrip("<")
        return None

    def check_hot_body(self, fn_cursor, hot_path):
        ck = self._ck
        fn_name = fn_cursor.spelling

        def visit(node):
            rel = self.in_scope(node)
            if rel is not None and rel != hot_path:
                # Bodies textually inside the function only (macro
                # expansions from elsewhere are their own files' business).
                return
            if node.kind == ck.CXX_NEW_EXPR:
                self.add("hot-path-purity", node,
                         f"new-expression in DNSSHIELD_HOT `{fn_name}`",
                         path=hot_path)
            elif node.kind == ck.VAR_DECL:
                type_obj = node.type
                if not self.is_reference_or_pointer(type_obj):
                    hit = self.allocating_prefix(self.canonical_type(type_obj))
                    if hit:
                        self.add(
                            "hot-path-purity", node,
                            f"local `{node.spelling}` of allocating type "
                            f"{hit} in DNSSHIELD_HOT `{fn_name}`",
                            path=hot_path)
            elif node.kind == ck.CALL_EXPR:
                # A constructor call materialising an allocating temporary
                # (libclang surfaces CXXConstructExpr/CXXTemporaryObjectExpr
                # as CALL_EXPR whose own type is the constructed record) ...
                own = self.canonical_type(node.type)
                hit = self.allocating_prefix(own)
                ref = node.referenced
                if hit and ref is not None and ref.kind == ck.CONSTRUCTOR:
                    self.add("hot-path-purity", node,
                             f"constructs allocating {hit} temporary in "
                             f"DNSSHIELD_HOT `{fn_name}`", path=hot_path)
                # ... and a call returning an allocating std type by value
                # (e.g. to_string()). Reference/pointer returns are reads
                # of existing storage and stay legal.
                elif ref is not None and ref.kind != ck.CONSTRUCTOR:
                    result = ref.result_type
                    if (result is not None
                            and not self.is_reference_or_pointer(result)):
                        hit = self.allocating_prefix(
                            self.canonical_type(result))
                        if hit:
                            self.add(
                                "hot-path-purity", node,
                                f"call to `{ref.spelling}` returns "
                                f"allocating {hit} by value in "
                                f"DNSSHIELD_HOT `{fn_name}`", path=hot_path)
            for child in node.get_children():
                visit(child)

        for child in fn_cursor.get_children():
            visit(child)

    # -- traversal --

    def walk(self, cursor):
        ck = self._ck
        for node in cursor.get_children():
            rel = self.in_scope(node)
            if rel is None:
                # Out-of-root subtree (system header / other repo area):
                # prune, nothing inside can produce an in-scope finding.
                continue
            self.check_global_state(node)
            self.check_types(node)
            self.check_calls(node)
            if (node.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                              ck.FUNCTION_TEMPLATE, ck.CONSTRUCTOR,
                              ck.CONVERSION_FUNCTION)
                    and node.is_definition()
                    and self.has_hot_annotation(node)):
                usr = node.get_usr()
                if usr not in self.hot_usrs:
                    self.hot_usrs.add(usr)
                    self.check_hot_body(node, rel)
            self.walk(node)

    def analyze_tu(self, source, args):
        try:
            tu = self.index.parse(source, args=args)
        except self.cindex.TranslationUnitLoadError as e:
            print(f"dnsshield_analyze: failed to parse {source}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        errors = [d for d in tu.diagnostics if d.severity >= 3]  # Error+
        if errors:
            for d in errors[:10]:
                print(f"dnsshield_analyze: {source}: {d.spelling}",
                      file=sys.stderr)
            sys.exit(2)
        self.walk(tu.cursor)


def run_analysis(cindex, build_dir, root, tu_prefix="src/"):
    """Parses every in-scope TU from the compilation database and returns
    the sorted finding list as (path, line, rule_name, message)."""
    analyzer = Analyzer(cindex, root)
    extra = resource_dir_args()
    entries = load_compile_commands(build_dir)
    scanned = 0
    seen_sources = set()
    for entry in entries:
        directory = entry.get("directory", ".")
        file_path = entry.get("file", "")
        source = os.path.normpath(
            file_path if os.path.isabs(file_path)
            else os.path.join(directory, file_path))
        rel = os.path.relpath(source, analyzer.root).replace(os.sep, "/")
        if rel.startswith("..") or not rel.startswith(tu_prefix):
            continue
        if source in seen_sources:
            continue
        seen_sources.add(source)
        command = entry.get("arguments") or entry.get("command", "")
        args = parse_args_for_tu(command, extra)
        analyzer.analyze_tu(source, args)
        scanned += 1
    if scanned == 0:
        print(f"dnsshield_analyze: no TUs under {tu_prefix} in the "
              f"compilation database at {build_dir}", file=sys.stderr)
        sys.exit(2)
    return sorted(analyzer.findings), scanned


def report(findings):
    for path, line, rule_name, message in findings:
        rule = RULES[rule_name]
        print(f"{path}:{line}: [{rule_name}] {message}")
        if rule.hint:
            print(f"{path}:{line}:   hint: {rule.hint}")


def main():
    parser = argparse.ArgumentParser(
        description="dnsshield AST analyzer (see module docstring)")
    parser.add_argument("-p", "--build-dir", default="build",
                        help="directory containing compile_commands.json "
                             "(default: build)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="analysis root; findings and rule scopes are "
                             "relative to it (default: the repo root). The "
                             "fixture self-test points this at "
                             "tests/analyzer_fixtures")
    parser.add_argument("--sarif", metavar="PATH",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--require-libclang", action="store_true",
                        help="treat missing libclang as an error instead of "
                             "a SKIP (CI uses this)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.name}: {rule.description}")
            for path in sorted(rule.allowlist):
                print(f"  allowlisted: {path}")
        sys.exit(0)

    cindex = load_cindex()
    if cindex is None:
        if args.require_libclang:
            print("dnsshield_analyze: FAIL: libclang required but "
                  "unavailable", file=sys.stderr)
            sys.exit(2)
        print("dnsshield_analyze: SKIP (libclang unavailable; the regex "
              "linter scripts/dnsshield_lint.py remains the active gate; "
              "`pip install libclang` enables this tool)")
        sys.exit(0)

    findings, scanned = run_analysis(cindex, args.build_dir, args.root)

    if args.sarif:
        from dnsshield_sarif import write_sarif
        write_sarif(args.sarif, "dnsshield_analyze",
                    [(r.name, r.description) for r in RULES.values()],
                    [(rule, message, path, line)
                     for path, line, rule, message in findings])

    if findings:
        report(findings)
        print(f"dnsshield_analyze: {len(findings)} finding(s) across "
              f"{scanned} TU(s)", file=sys.stderr)
        sys.exit(1)
    print(f"dnsshield_analyze: clean ({scanned} TUs, {len(RULES)} rules)")
    sys.exit(0)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()

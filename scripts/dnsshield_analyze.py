#!/usr/bin/env python3
"""dnsshield AST analyzer: semantic upgrades of the regex lint rules.

Where scripts/dnsshield_lint.py matches tokens, this tool parses every
translation unit through libclang (python `clang.cindex`), driven by the
compile_commands.json the build already exports. Working on the AST means
the rules resolve through typedefs/using-declarations and never fire on
comments or string literals — the two failure modes a regex linter cannot
escape.

Rules
  mutable-global-state  Non-const namespace-scope variables and
                        function-local `static` mutable variables in the
                        simulation layers. Any such slot is shared mutable
                        state that can couple replicates and break
                        bit-reproducibility. Allowlisted: the allocation
                        counters and the audit-handler slot (file-level
                        allowlist below, each entry justified).
  hot-path-purity       Functions annotated DNSSHIELD_HOT
                        (src/sim/annotations.h) must not contain
                        new-expressions, construct std::function, or
                        create locals/temporaries of allocating std
                        containers/strings — the compile-time form of the
                        0-allocs/op guards in bench/micro_benchmarks.cpp.
  wall-clock            AST port of the regex rule: host clock types
                        (std::chrono system/steady/high_resolution —
                        caught through any typedef) and C time functions.
  randomness            AST port: std engines by canonical type (so
                        `using Twister = std::mt19937` is caught),
                        std::random_device, C rand/srand family.
  float-time            AST port: any declaration, member, parameter, or
                        return of type `float` (canonical, so
                        typedef-laundered floats are caught).
  io                    AST port: std::cout/std::cerr references and
                        printf-family calls in library code.
  threads               AST port: std::thread/jthread by canonical type,
                        std::async calls, and thread::detach().
  unchecked-buffer-access
                        Inside DNSSHIELD_UNTRUSTED_INPUT functions (the
                        wire/zone/trace parsers): raw builtin subscripts,
                        operator[] on std spans/strings/containers,
                        .data(), mem*/str* functions, pointer arithmetic,
                        and raw istream reads are banned — every byte of
                        untrusted input must flow through the
                        bounds-checked readers (src/sim/checked_reader.h
                        or the wire Decoder).
  unchecked-offset-arithmetic
                        Inside DNSSHIELD_UNTRUSTED_INPUT functions:
                        builtin +/-/+=/-= over reader positions or sizes
                        (pos()/size()/tellg()/... operands) is banned; a
                        hand-rolled `pos + len` is a truncation check
                        waiting to be forgotten. Use require()/limit()/
                        seek() style helpers.
  error-contract        Inside DNSSHIELD_UNTRUSTED_INPUT functions: only
                        the parser's own *Error exception types may be
                        thrown; unguarded .at()/sto* calls (which leak
                        std::out_of_range / std::invalid_argument) and
                        abort-style calls are banned.

Interprocedural rules (scripts/dnsshield_callgraph.py; DESIGN.md
section 16). While parsing, every in-tree function definition is also
extracted into a cross-TU call-graph fragment (libclang USRs as node
ids; direct, member, constructor, and InplaceCallback/FunctionRef
callback-construction edges). The merged graph drives three rules the
per-body walks cannot see:

  transitive-hot-purity Every function reachable from a DNSSHIELD_HOT
                        root through invocation edges must itself be
                        annotated or provably allocation-free. A hot
                        function calling an unannotated allocating
                        helper is exactly the hole the per-body rule
                        leaves open. --suggest-annotations prints the
                        minimal annotation set closing the gap.
  determinism-order     Iteration over std::unordered_{map,set} whose
                        loop body performs — or reaches, via the call
                        graph — ordered accumulation (push_back/append/
                        += on vector/deque/string) or output emission
                        (ostream <<, JsonWriter/Tracer sinks): the
                        classic nondeterministic-bytes source.
  exception-escape      No non-`dnsshield::*Error` exception may
                        propagate out of a DNSSHIELD_UNTRUSTED_INPUT
                        entry point through unannotated callees
                        (unguarded call edges only; try blocks stop the
                        walk).

The per-TU fragments and findings are cached (mtime+content-hash keyed,
invalidated when the analyzer scripts change) so warm re-analysis skips
parsing entirely; see --callgraph-cache.

Exit status: 0 clean (or libclang unavailable: SKIP notice, so callers
fall back to the regex linter), 1 findings, 2 usage/internal error.
With --require-libclang a missing libclang is an error (CI uses this).

Usage
  scripts/dnsshield_analyze.py -p build              # scan src/ TUs
  scripts/dnsshield_analyze.py -p build --sarif out.sarif
  scripts/dnsshield_analyze.py -p build --suggest-annotations
  scripts/dnsshield_analyze.py -p build --baseline scripts/analysis_baseline.txt
  scripts/dnsshield_analyze.py --list-rules
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import dnsshield_baseline as baseline_io  # noqa: E402
import dnsshield_callgraph as callgraph  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_ANNOTATION = "dnsshield::hot"
UNTRUSTED_ANNOTATION = "dnsshield::untrusted_input"

# Layers the mutable-global rule covers (the simulation kernel proper;
# metrics/trace sinks are replicate-owned objects, not globals).
SIM_LAYERS = (
    "src/sim/",
    "src/dns/",
    "src/resolver/",
    "src/server/",
    "src/attack/",
    "src/core/",
)

# std templates whose construction implies heap allocation. Matched
# against canonical type spellings with inline namespaces normalized, so
# std::string, std::__cxx11::basic_string, and any typedef of either all
# hit "std::basic_string<". (Map/set iterators canonicalize to internal
# __detail/__tree types and deliberately do NOT match.)
ALLOCATING_STD_PREFIXES = (
    "std::function<",
    "std::basic_string<",
    "std::vector<",
    "std::deque<",
    "std::list<",
    "std::forward_list<",
    "std::map<",
    "std::multimap<",
    "std::set<",
    "std::multiset<",
    "std::unordered_map<",
    "std::unordered_multimap<",
    "std::unordered_set<",
    "std::unordered_multiset<",
    "std::basic_stringstream<",
    "std::basic_ostringstream<",
    "std::basic_istringstream<",
)

CLOCK_TYPE_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)\b")
ENGINE_TYPE_RE = re.compile(
    r"std::(mersenne_twister_engine|linear_congruential_engine|"
    r"subtract_with_carry_engine|discard_block_engine|"
    r"shuffle_order_engine|independent_bits_engine|random_device)\b")
FLOAT_RE = re.compile(r"(?<![\w])float(?![\w])")
THREAD_TYPE_RE = re.compile(r"std::(thread|jthread)\b")

C_TIME_FUNCTIONS = frozenset({
    "time", "gettimeofday", "clock_gettime", "clock", "localtime", "gmtime",
    "mktime", "strftime", "ctime", "localtime_r", "gmtime_r", "ctime_r",
    "localtime_s", "gmtime_s", "ctime_s", "timespec_get",
})
C_RAND_FUNCTIONS = frozenset({"rand", "srand", "random", "srandom",
                              "drand48", "lrand48", "mrand48", "srand48"})
C_IO_FUNCTIONS = frozenset({"printf", "fprintf", "puts", "fputs", "putchar",
                            "fputc", "perror", "vprintf", "vfprintf"})

# --- untrusted-input rule tables ---------------------------------------------
#
# std containers whose unchecked element accessors (operator[], .data())
# are banned inside DNSSHIELD_UNTRUSTED_INPUT functions. Matched against
# the canonical type of the member's parent class, with the bare class
# name as fallback (libclang hands back the uninstantiated template
# pattern for some call forms, where the parent has no canonical type).
# Deliberately NOT banned: front()/back() (no computed index involved)
# and .at() (bounds-checked — but it throws std::out_of_range, so it
# falls under error-contract instead when unguarded).
SUBSCRIPT_PARENT_PREFIXES = (
    "std::span<",
    "std::basic_string<",
    "std::basic_string_view<",
    "std::vector<",
    "std::array<",
    "std::deque<",
)
SUBSCRIPT_PARENT_NAMES = frozenset({
    "span", "basic_string", "basic_string_view", "vector", "array", "deque",
})

# .at() additionally covers the associative containers.
AT_PARENT_PREFIXES = SUBSCRIPT_PARENT_PREFIXES + (
    "std::map<",
    "std::unordered_map<",
)
AT_PARENT_NAMES = SUBSCRIPT_PARENT_NAMES | {"map", "unordered_map"}

# C memory/string routines that take (pointer, length) with no bounds
# knowledge of their own.
RAW_MEMORY_FUNCTIONS = frozenset({
    "memcpy", "memmove", "memcmp", "memchr", "memset",
    "strcpy", "strncpy", "strcat", "strncat", "strlen",
    "sprintf", "vsprintf",
})

# istream members that read raw bytes/positions with caller-supplied
# lengths. Member-only: the free std::getline(istream&, string&) grows
# the string itself and stays legal.
RAW_ISTREAM_METHODS = frozenset({
    "read", "get", "peek", "ignore", "seekg", "putback", "unget", "getline",
})
ISTREAM_PARENT_PREFIXES = (
    "std::basic_istream<",
    "std::basic_iostream<",
    "std::basic_ios<",
    "std::basic_ifstream<",
    "std::basic_fstream<",
    "std::basic_istringstream<",
    "std::basic_stringstream<",
)
ISTREAM_PARENT_NAMES = frozenset({
    "basic_istream", "basic_iostream", "basic_ios", "basic_ifstream",
    "basic_fstream", "basic_istringstream", "basic_stringstream",
})

# Methods whose result is a buffer position/size: builtin arithmetic on
# them is hand-rolled offset math (the thing require()/limit()/seek()
# exist to replace).
POSITION_METHODS = frozenset({
    "pos", "size", "length", "remaining", "offset", "limit",
    "tellg", "tellp", "gcount",
})

# std converters that throw std::invalid_argument / std::out_of_range.
STO_FUNCTIONS = frozenset({
    "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold",
    "atoi", "atol", "atoll", "atof",
})

# Abort-style control flow (assert() expands to __assert_fail on glibc).
ABORT_FUNCTIONS = frozenset({
    "abort", "exit", "_Exit", "quick_exit", "terminate",
    "__assert_fail", "__assert_perror_fail", "__assert_rtn",
})

# Exception types a parser may let escape: its own dnsshield *Error
# classes (WireFormatError, ZoneFileError, TraceFormatError, ...).
PARSE_ERROR_TYPE_RE = re.compile(r"^dnsshield::(?:\w+::)*\w*Error$")

# --- call-graph extraction tables --------------------------------------------
#
# Closure wrappers whose construction records a `callback` edge to the
# wrapped callable (invoked later, on someone else's stack — the
# interprocedural rules deliberately do not traverse these edges; see
# scripts/dnsshield_callgraph.py).
CALLBACK_WRAPPER_PREFIXES = (
    "dnsshield::sim::InplaceCallback",
    "dnsshield::sim::FunctionRef<",
)

# Ordered-accumulation targets: appending to these is order-sensitive
# (an unordered-iteration body feeding one is a determinism bug).
# Unordered targets (inserting into a set/map) and commutative arithmetic
# stay legal.
ACCUM_PARENT_PREFIXES = (
    "std::vector<",
    "std::deque<",
    "std::basic_string<",
)
ACCUM_PARENT_NAMES = frozenset({"vector", "deque", "basic_string"})
ACCUM_METHODS = frozenset({"push_back", "emplace_back", "append",
                           "operator+="})

# Output-emission sinks: ostream writes and the project's report/trace
# writers. A function containing one becomes an emitter node; unordered
# loops reaching an emitter (directly or transitively) are flagged.
OSTREAM_PARENT_PREFIXES = (
    "std::basic_ostream<",
    "std::basic_iostream<",
    "std::basic_ofstream<",
    "std::basic_fstream<",
    "std::basic_ostringstream<",
    "std::basic_stringstream<",
)
OSTREAM_PARENT_NAMES = frozenset({
    "basic_ostream", "basic_iostream", "basic_ofstream", "basic_fstream",
    "basic_ostringstream", "basic_stringstream",
})
OSTREAM_METHODS = frozenset({"write", "put", "flush"})
EMITTER_CLASS_PREFIXES = (
    "dnsshield::metrics::JsonWriter",
    "dnsshield::metrics::Tracer",
)

# Builtin operators that constitute offset arithmetic.
OFFSET_OPERATORS = frozenset({"+", "-", "+=", "-="})
_BINOP_NAME_TO_SPELLING = {
    "Add": "+", "Sub": "-", "AddAssign": "+=", "SubAssign": "-=",
}


def normalize_type(spelling):
    """Strips the std inline namespaces (libstdc++ __cxx11, libc++ __1,
    gcc chrono _V2) so prefix/regex matching is library-agnostic."""
    return re.sub(r"std::(__cxx11|__1|_V2)::", "std::", spelling)


class Rule:
    def __init__(self, name, description, allowlist=(), applies_to=("src/",),
                 hint=""):
        self.name = name
        self.description = description
        self.allowlist = frozenset(allowlist)
        self.applies_to = tuple(applies_to)
        self.hint = hint

    def covers(self, path):
        return path.startswith(self.applies_to) and path not in self.allowlist


RULES = {
    "mutable-global-state": Rule(
        "mutable-global-state",
        "mutable namespace-scope or function-local static variable in the "
        "simulation layers (shared mutable state breaks replicate "
        "hermeticity and bit-reproducibility)",
        allowlist=(
            # Global new/delete interposition counters: process-wide by
            # nature (atomics, relaxed), read only by the benchmark guards.
            "src/sim/alloc_counter.cpp",
            "src/sim/alloc_hook.cpp",
            # The audit failure handler slot: mutex-guarded
            # (DNSSHIELD_GUARDED_BY), installed serially at test setup.
            "src/sim/audit.cpp",
        ),
        applies_to=SIM_LAYERS,
        hint="pass state through the simulation objects; if it truly must "
        "be global, guard it and allowlist it here with a justification",
    ),
    "hot-path-purity": Rule(
        "hot-path-purity",
        "allocation in a DNSSHIELD_HOT function (new-expression, "
        "std::function construction, or an allocating std "
        "container/string local or temporary)",
        hint="hot paths reuse scratch buffers / InplaceCallback; move the "
        "allocation to setup code or drop the DNSSHIELD_HOT annotation",
    ),
    "wall-clock": Rule(
        "wall-clock",
        "wall-clock time source (resolved through typedefs) in simulation "
        "code; all time flows from sim::SimTime via the event queue",
        hint="derive every timestamp from sim::SimTime / EventQueue::now()",
    ),
    "randomness": Rule(
        "randomness",
        "ambient randomness (std engine / random_device / C rand family, "
        "resolved through typedefs); use the explicitly seeded sim::Rng",
        hint="draw from sim::Rng (seed it; derive streams with derive_seed)",
    ),
    "float-time": Rule(
        "float-time",
        "`float` (canonical type) in library code; simulated-time "
        "arithmetic must use the double-based types from src/sim/time.h",
        hint="use sim::SimTime / sim::Duration (or double) instead",
    ),
    "io": Rule(
        "io",
        "direct console output in library code (metrics/tracer sinks and "
        "driver binaries only)",
        allowlist=(
            # The audit failure handler prints the failing invariant right
            # before the process aborts; no report stream exists to corrupt.
            "src/sim/audit.cpp",
        ),
        hint="return strings / write through metrics sinks; printing is "
        "the drivers' job",
    ),
    "threads": Rule(
        "threads",
        "raw threading (std::thread/jthread/async/detach, resolved through "
        "typedefs) outside the deterministic runner",
        allowlist=(
            # The deterministic parallel runner IS the sanctioned home of
            # std::thread; everything else uses its ThreadPool.
            "src/sim/parallel.h",
            "src/sim/parallel.cpp",
        ),
        hint="use sim::ThreadPool / sim::parallel_map (src/sim/parallel.h)",
    ),
    "unchecked-buffer-access": Rule(
        "unchecked-buffer-access",
        "raw input access in a DNSSHIELD_UNTRUSTED_INPUT function "
        "(builtin subscript, operator[] / .data() on a std container, "
        "pointer arithmetic, mem*/str* call, or raw istream read); every "
        "byte of untrusted input must flow through a bounds-checked "
        "reader",
        hint="read through sim::ByteReader / TextScanner / StreamReader "
        "(src/sim/checked_reader.h) or the wire Decoder helpers",
    ),
    "unchecked-offset-arithmetic": Rule(
        "unchecked-offset-arithmetic",
        "hand-rolled offset/size arithmetic in a "
        "DNSSHIELD_UNTRUSTED_INPUT function (builtin +/- over reader "
        "positions or sizes); a forgotten truncation check here is a "
        "heap overread",
        hint="use the checked helpers — require()/limit()/seek()/"
        "take_until() — instead of adding to pos()/size() by hand",
    ),
    "error-contract": Rule(
        "error-contract",
        "a DNSSHIELD_UNTRUSTED_INPUT function lets a non-parse-error "
        "escape (throws a non-*Error type, calls .at()/sto* outside any "
        "try block, or reaches abort-style control flow)",
        hint="throw the parser's own *Error type (WireFormatError / "
        "ZoneFileError / TraceFormatError); wrap std converters in "
        "try/catch and rethrow",
    ),
    "transitive-hot-purity": Rule(
        "transitive-hot-purity",
        "an unannotated function reachable from a DNSSHIELD_HOT root "
        "(through direct/member/ctor call edges) contains allocation "
        "facts; the hot closure must be annotated or provably pure",
        hint="annotate the callee DNSSHIELD_HOT (then fix its body), or "
        "move the allocation to setup code; --suggest-annotations "
        "prints the minimal annotation set",
    ),
    "determinism-order": Rule(
        "determinism-order",
        "iteration over std::unordered_map/unordered_set whose body "
        "performs or (via the call graph) reaches ordered accumulation "
        "or output emission; hash-order iteration makes the produced "
        "bytes irreproducible across library versions and seeds",
        hint="iterate a std::map/sorted snapshot instead, or collect "
        "into a container and sort on a total key before emitting",
    ),
    "exception-escape": Rule(
        "exception-escape",
        "a non-dnsshield::*Error exception can propagate out of a "
        "DNSSHIELD_UNTRUSTED_INPUT entry point through an unannotated "
        "callee (unguarded call chain to a throw site or unguarded "
        ".at()/sto* call)",
        hint="validate before calling, wrap the call in try/catch and "
        "rethrow the parser's *Error type, or annotate the callee "
        "DNSSHIELD_UNTRUSTED_INPUT and give it its own contract",
    ),
}


# ---- libclang loading -------------------------------------------------------


def load_cindex():
    """Imports clang.cindex and verifies the native library loads.

    Returns the module, or None (with a reason printed) when the python
    bindings or libclang.so are unavailable — callers then SKIP and fall
    back to the regex linter.
    """
    try:
        from clang import cindex
    except ImportError as e:
        print(f"dnsshield_analyze: python clang bindings unavailable ({e})")
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # noqa: BLE001 - LibclangError type varies by version
        pass
    # Retry against well-known sonames (distro python3-clang often needs
    # an explicit library file).
    candidates = []
    found = shutil.which("llvm-config")
    if found:
        try:
            libdir = subprocess.run(
                [found, "--libdir"], capture_output=True, text=True,
                check=True).stdout.strip()
            candidates.append(os.path.join(libdir, "libclang.so"))
        except (OSError, subprocess.SubprocessError):
            pass
    for ver in range(21, 10, -1):
        candidates.append(f"libclang-{ver}.so.1")
        candidates.append(f"libclang.so.{ver}")
    candidates.append("libclang.so")
    for lib in candidates:
        try:
            cindex.Config.library_file = None
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001
            continue
    print("dnsshield_analyze: libclang shared library not loadable")
    return None


def resource_dir_args():
    """Builtin headers (stddef.h & co). When a clang driver is installed
    its resource dir is authoritative; otherwise trust libclang's own."""
    clang_bin = shutil.which("clang") or shutil.which("clang++")
    if clang_bin is None:
        return []
    try:
        out = subprocess.run([clang_bin, "-print-resource-dir"],
                             capture_output=True, text=True, check=True)
        rd = out.stdout.strip()
        return ["-resource-dir", rd] if rd else []
    except (OSError, subprocess.SubprocessError):
        return []


# ---- compile_commands handling ---------------------------------------------

# Only flags that affect parsing survive; everything else (codegen flags,
# gcc-only warnings) is dropped so a gcc-generated database parses
# cleanly under libclang.
_KEEP_PREFIX = ("-I", "-D", "-U", "-std=")
_KEEP_WITH_ARG = ("-isystem", "-include", "-isysroot", "-iquote")


def parse_args_for_tu(command, fallback_args):
    """Extracts parse-relevant flags from one compile command."""
    if isinstance(command, str):
        tokens = shlex.split(command)
    else:
        tokens = list(command)
    kept = []
    i = 1  # token 0 is the compiler
    while i < len(tokens):
        tok = tokens[i]
        if tok.startswith(_KEEP_PREFIX):
            kept.append(tok)
            if tok in ("-I", "-D", "-U") and i + 1 < len(tokens):
                i += 1
                kept.append(tokens[i])
        elif tok in _KEEP_WITH_ARG:
            kept.append(tok)
            if i + 1 < len(tokens):
                i += 1
                kept.append(tokens[i])
        i += 1
    if not any(t.startswith("-std=") for t in kept):
        kept.append("-std=c++20")
    return kept + fallback_args


def load_compile_commands(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"dnsshield_analyze: no compile_commands.json in {build_dir} "
              "(configure the build first: cmake -B build -S .)",
              file=sys.stderr)
        sys.exit(2)
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


# ---- the analysis -----------------------------------------------------------


class Analyzer:
    def __init__(self, cindex, root):
        self.cindex = cindex
        self.root = os.path.abspath(root)
        self.index = cindex.Index.create()
        self.findings = set()  # (path, line, rule_name, message)
        self.hot_usrs = set()
        self.untrusted_usrs = set()
        # Cross-TU call-graph fragment: usr -> node dict
        # (scripts/dnsshield_callgraph.py holds the schema and the rules).
        self.fragment = {}
        self._ck = cindex.CursorKind
        self._tk = cindex.TypeKind

    # -- helpers --

    def rel(self, path):
        return os.path.relpath(os.path.abspath(path),
                               self.root).replace(os.sep, "/")

    def in_scope(self, cursor):
        """True when the cursor's spelling location is a file under the
        analysis root (filters out system headers)."""
        loc = cursor.location
        if loc.file is None:
            return None
        rel = self.rel(loc.file.name)
        if rel.startswith(".."):
            return None
        return rel

    def add(self, rule_name, cursor, message, path=None):
        rule = RULES[rule_name]
        if path is None:
            path = self.in_scope(cursor)
        if path is None or not rule.covers(path):
            return
        self.findings.add((path, cursor.location.line, rule_name, message))

    def canonical_type(self, type_obj):
        try:
            return normalize_type(type_obj.get_canonical().spelling)
        except Exception:  # noqa: BLE001 - defensive: bindings vary
            return ""

    def is_reference_or_pointer(self, type_obj):
        kind = type_obj.get_canonical().kind
        return kind in (self._tk.LVALUEREFERENCE, self._tk.RVALUEREFERENCE,
                        self._tk.POINTER)

    def is_foreign(self, cursor):
        """True for declarations outside the analysis root (std/system),
        so calls to the project's own `find`/`clock`-named functions never
        fire the C-library rules."""
        if cursor is None:
            return False
        loc = cursor.location
        if loc.file is None:
            return True
        return self.rel(loc.file.name).startswith("..")

    def has_annotation(self, cursor, annotation):
        ck = self._ck
        for decl in (cursor, cursor.canonical):
            if decl is None:
                continue
            for child in decl.get_children():
                if (child.kind == ck.ANNOTATE_ATTR
                        and child.spelling == annotation):
                    return True
        return False

    def member_parent_matches(self, ref, type_prefixes, class_names):
        """True when `ref` (a referenced member function) belongs to one
        of the named std classes. Checks the parent's canonical type
        spelling first (covers instantiated members) and falls back to
        the bare class name (covers the uninstantiated template
        pattern, whose cursor has no usable type)."""
        parent = ref.semantic_parent
        if parent is None:
            return False
        try:
            spelling = normalize_type(parent.type.get_canonical().spelling)
        except Exception:  # noqa: BLE001 - namespaces etc. have no type
            spelling = ""
        if spelling and spelling.startswith(type_prefixes):
            return True
        return parent.spelling in class_names

    def binary_op_spelling(self, node):
        """Operator spelling of a builtin BINARY_OPERATOR /
        COMPOUND_ASSIGNMENT_OPERATOR cursor. Uses the binary_operator
        property (clang >= 17 bindings); older bindings fall back to
        scanning for the first token past the LHS extent."""
        try:
            opcode = node.binary_operator
            name = getattr(opcode, "name", "")
            if name and name != "Invalid":
                return _BINOP_NAME_TO_SPELLING.get(name, name)
        except AttributeError:
            pass
        children = list(node.get_children())
        if not children:
            return ""
        try:
            lhs_end = children[0].extent.end.offset
            for tok in node.get_tokens():
                if tok.extent.start.offset >= lhs_end:
                    return tok.spelling
        except Exception:  # noqa: BLE001 - token access is best-effort
            pass
        return ""

    def unwrap_expr(self, node):
        """Descends through implicit casts / parens to the interesting
        expression node."""
        ck = self._ck
        while node.kind in (ck.UNEXPOSED_EXPR, ck.PAREN_EXPR):
            children = list(node.get_children())
            if len(children) != 1:
                break
            node = children[0]
        return node

    # -- per-node rule checks --

    def check_global_state(self, cursor):
        ck = self._ck
        if cursor.kind != ck.VAR_DECL or not cursor.is_definition():
            return
        parent = cursor.semantic_parent
        if parent is None:
            return
        at_namespace_scope = parent.kind in (ck.NAMESPACE, ck.TRANSLATION_UNIT)
        sc = cursor.storage_class
        is_local_static = (
            not at_namespace_scope
            and parent.kind not in (ck.CLASS_DECL, ck.STRUCT_DECL,
                                    ck.CLASS_TEMPLATE, ck.UNION_DECL)
            and sc == self.cindex.StorageClass.STATIC)
        if not at_namespace_scope and not is_local_static:
            return
        type_obj = cursor.type.get_canonical()
        if type_obj.is_const_qualified():
            return
        where = ("namespace-scope" if at_namespace_scope
                 else "function-local static")
        self.add("mutable-global-state", cursor,
                 f"{where} mutable variable `{cursor.spelling}` of type "
                 f"`{normalize_type(type_obj.spelling)}`")

    def check_types(self, cursor):
        """Typedef-resolving type checks (wall-clock clocks, std engines,
        float, std::thread) on declarations, calls, and type aliases."""
        ck = self._ck
        kind = cursor.kind
        spellings = []
        if kind in (ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL):
            spellings.append(self.canonical_type(cursor.type))
        elif kind in (ck.TYPEDEF_DECL, ck.TYPE_ALIAS_DECL):
            try:
                spellings.append(normalize_type(
                    cursor.underlying_typedef_type.get_canonical().spelling))
            except Exception:  # noqa: BLE001
                pass
        elif kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.FUNCTION_TEMPLATE):
            spellings.append(self.canonical_type(cursor.result_type))
        elif kind == ck.CALL_EXPR:
            ref = cursor.referenced
            if ref is not None:
                spellings.append(self.canonical_type(ref.result_type))
        for spelling in spellings:
            if not spelling:
                continue
            if CLOCK_TYPE_RE.search(spelling):
                self.add("wall-clock", cursor,
                         f"host clock type in `{spelling}`")
            if ENGINE_TYPE_RE.search(spelling):
                self.add("randomness", cursor,
                         f"std random engine/device in `{spelling}`")
            if FLOAT_RE.search(spelling):
                self.add("float-time", cursor, f"`float` in `{spelling}`")
            if THREAD_TYPE_RE.search(spelling):
                self.add("threads", cursor,
                         f"std thread type in `{spelling}`")

    def check_calls(self, cursor):
        ck = self._ck
        if cursor.kind == ck.DECL_REF_EXPR:
            ref = cursor.referenced
            if (ref is not None and ref.spelling in ("cout", "cerr", "wcout",
                                                     "wcerr")
                    and self.is_foreign(ref)):
                self.add("io", cursor, f"std::{ref.spelling} reference")
            return
        if cursor.kind != ck.CALL_EXPR:
            return
        ref = cursor.referenced
        if ref is None or not self.is_foreign(ref):
            return
        name = ref.spelling
        if name in C_TIME_FUNCTIONS:
            self.add("wall-clock", cursor, f"C time function `{name}()`")
        elif name in C_RAND_FUNCTIONS:
            self.add("randomness", cursor, f"C random function `{name}()`")
        elif name in C_IO_FUNCTIONS:
            self.add("io", cursor, f"printf-family call `{name}()`")
        elif name == "async":
            parent = ref.semantic_parent
            if parent is not None and parent.spelling == "std":
                self.add("threads", cursor, "std::async call")
        elif name == "detach":
            parent = ref.semantic_parent
            if parent is not None and parent.spelling in ("thread", "jthread"):
                self.add("threads", cursor, f"{parent.spelling}::detach()")

    # -- hot-path purity --

    def allocating_prefix(self, spelling):
        for prefix in ALLOCATING_STD_PREFIXES:
            if spelling.startswith(prefix):
                return prefix.rstrip("<")
        return None

    def check_hot_body(self, fn_cursor, hot_path):
        ck = self._ck
        fn_name = fn_cursor.spelling

        def visit(node):
            rel = self.in_scope(node)
            if rel is not None and rel != hot_path:
                # Bodies textually inside the function only (macro
                # expansions from elsewhere are their own files' business).
                return
            if node.kind == ck.CXX_NEW_EXPR:
                self.add("hot-path-purity", node,
                         f"new-expression in DNSSHIELD_HOT `{fn_name}`",
                         path=hot_path)
            elif node.kind == ck.VAR_DECL:
                type_obj = node.type
                if not self.is_reference_or_pointer(type_obj):
                    hit = self.allocating_prefix(self.canonical_type(type_obj))
                    if hit:
                        self.add(
                            "hot-path-purity", node,
                            f"local `{node.spelling}` of allocating type "
                            f"{hit} in DNSSHIELD_HOT `{fn_name}`",
                            path=hot_path)
            elif node.kind == ck.CALL_EXPR:
                # A constructor call materialising an allocating temporary
                # (libclang surfaces CXXConstructExpr/CXXTemporaryObjectExpr
                # as CALL_EXPR whose own type is the constructed record) ...
                own = self.canonical_type(node.type)
                hit = self.allocating_prefix(own)
                ref = node.referenced
                if hit and ref is not None and ref.kind == ck.CONSTRUCTOR:
                    self.add("hot-path-purity", node,
                             f"constructs allocating {hit} temporary in "
                             f"DNSSHIELD_HOT `{fn_name}`", path=hot_path)
                # ... and a call returning an allocating std type by value
                # (e.g. to_string()). Reference/pointer returns are reads
                # of existing storage and stay legal.
                elif ref is not None and ref.kind != ck.CONSTRUCTOR:
                    result = ref.result_type
                    if (result is not None
                            and not self.is_reference_or_pointer(result)):
                        hit = self.allocating_prefix(
                            self.canonical_type(result))
                        if hit:
                            self.add(
                                "hot-path-purity", node,
                                f"call to `{ref.spelling}` returns "
                                f"allocating {hit} by value in "
                                f"DNSSHIELD_HOT `{fn_name}`", path=hot_path)
            for child in node.get_children():
                visit(child)

        for child in fn_cursor.get_children():
            visit(child)

    # -- untrusted-input parse contracts --

    def check_untrusted_call(self, node, fn_name, fn_path, try_depth):
        ref = node.referenced
        if ref is None:
            return
        name = ref.spelling
        if (name == "operator[]"
                and self.member_parent_matches(ref, SUBSCRIPT_PARENT_PREFIXES,
                                               SUBSCRIPT_PARENT_NAMES)):
            self.add("unchecked-buffer-access", node,
                     f"unchecked operator[] on a std container in "
                     f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`", path=fn_path)
        elif (name == "data"
              and self.member_parent_matches(ref, SUBSCRIPT_PARENT_PREFIXES,
                                             SUBSCRIPT_PARENT_NAMES)):
            self.add("unchecked-buffer-access", node,
                     f"`.data()` escapes bounds checking in "
                     f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`", path=fn_path)
        elif name in RAW_MEMORY_FUNCTIONS and self.is_foreign(ref):
            self.add("unchecked-buffer-access", node,
                     f"raw memory function `{name}()` in "
                     f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`", path=fn_path)
        elif (name in RAW_ISTREAM_METHODS
              and self.member_parent_matches(ref, ISTREAM_PARENT_PREFIXES,
                                             ISTREAM_PARENT_NAMES)):
            self.add("unchecked-buffer-access", node,
                     f"raw istream `.{name}()` in "
                     f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`", path=fn_path)
        elif (name == "at" and try_depth == 0
              and self.member_parent_matches(ref, AT_PARENT_PREFIXES,
                                             AT_PARENT_NAMES)):
            self.add("error-contract", node,
                     f"unguarded `.at()` in DNSSHIELD_UNTRUSTED_INPUT "
                     f"`{fn_name}` (std::out_of_range escapes)",
                     path=fn_path)
        elif (name in STO_FUNCTIONS and try_depth == 0
              and self.is_foreign(ref)):
            self.add("error-contract", node,
                     f"unguarded `{name}()` in DNSSHIELD_UNTRUSTED_INPUT "
                     f"`{fn_name}` (std::invalid_argument / "
                     f"std::out_of_range escape)", path=fn_path)
        elif name in ABORT_FUNCTIONS and self.is_foreign(ref):
            self.add("error-contract", node,
                     f"abort-style call `{name}()` in "
                     f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}` (malformed "
                     f"input must throw, never kill the process)",
                     path=fn_path)

    def check_offset_arithmetic(self, node, fn_name, fn_path):
        op = self.binary_op_spelling(node)
        if op not in OFFSET_OPERATORS:
            return
        for operand in node.get_children():
            operand = self.unwrap_expr(operand)
            try:
                type_kind = operand.type.get_canonical().kind
            except Exception:  # noqa: BLE001
                continue
            if type_kind in (self._tk.POINTER, self._tk.CONSTANTARRAY,
                             self._tk.INCOMPLETEARRAY):
                self.add("unchecked-buffer-access", node,
                         f"pointer arithmetic (`{op}`) in "
                         f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`",
                         path=fn_path)
                return
            if operand.kind == self._ck.CALL_EXPR:
                ref = operand.referenced
                if ref is not None and ref.spelling in POSITION_METHODS:
                    self.add("unchecked-offset-arithmetic", node,
                             f"`{op}` over `.{ref.spelling}()` in "
                             f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`",
                             path=fn_path)
                    return

    def check_untrusted_throw(self, node, fn_name, fn_path):
        children = list(node.get_children())
        if not children:
            return  # bare `throw;` rethrows something already caught
        thrown = self.canonical_type(children[0].type)
        if not thrown or PARSE_ERROR_TYPE_RE.match(thrown):
            return
        self.add("error-contract", node,
                 f"throws non-parse-error `{thrown}` from "
                 f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`", path=fn_path)

    def check_untrusted_body(self, fn_cursor, fn_path):
        ck = self._ck
        fn_name = fn_cursor.spelling

        def visit(node, try_depth):
            rel = self.in_scope(node)
            if rel is not None and rel != fn_path:
                # Bodies textually inside the function only, as for the
                # hot-path rule.
                return
            kind = node.kind
            if kind == ck.CXX_TRY_STMT:
                # The try block guards .at()/sto* throws; the catch
                # handlers run outside that guard.
                for child in node.get_children():
                    if child.kind == ck.CXX_CATCH_STMT:
                        visit(child, try_depth)
                    else:
                        visit(child, try_depth + 1)
                return
            if kind == ck.ARRAY_SUBSCRIPT_EXPR:
                self.add("unchecked-buffer-access", node,
                         f"raw array subscript in "
                         f"DNSSHIELD_UNTRUSTED_INPUT `{fn_name}`",
                         path=fn_path)
            elif kind in (ck.BINARY_OPERATOR,
                          ck.COMPOUND_ASSIGNMENT_OPERATOR):
                self.check_offset_arithmetic(node, fn_name, fn_path)
            elif kind == ck.CXX_THROW_EXPR:
                self.check_untrusted_throw(node, fn_name, fn_path)
            elif kind == ck.CALL_EXPR:
                self.check_untrusted_call(node, fn_name, fn_path, try_depth)
            for child in node.get_children():
                visit(child, try_depth)

        for child in fn_cursor.get_children():
            visit(child, 0)

    # -- call-graph fragment extraction --

    def qualified_name(self, cursor):
        parts = [cursor.spelling or "<anonymous>"]
        ck = self._ck
        parent = cursor.semantic_parent
        while parent is not None and parent.kind not in (
                ck.TRANSLATION_UNIT,):
            if parent.kind == ck.NAMESPACE and not parent.spelling:
                parent = parent.semantic_parent
                continue  # anonymous namespace adds nothing readable
            if parent.spelling:
                parts.append(parent.spelling)
            parent = parent.semantic_parent
        # Drop the dnsshield:: prefix layers for readable chains.
        names = [p for p in reversed(parts) if p != "dnsshield"]
        return "::".join(names)

    def alloc_fact(self, node):
        """The intraprocedural hot-path-purity facts, reused verbatim as
        the call graph's allocation facts: new-expressions, allocating
        std locals, allocating temporaries, by-value allocating returns.
        Returns a description string or None."""
        ck = self._ck
        if node.kind == ck.CXX_NEW_EXPR:
            return "new-expression"
        if node.kind == ck.VAR_DECL:
            type_obj = node.type
            if not self.is_reference_or_pointer(type_obj):
                hit = self.allocating_prefix(self.canonical_type(type_obj))
                if hit:
                    return (f"local `{node.spelling}` of allocating "
                            f"type {hit}")
            return None
        if node.kind == ck.CALL_EXPR:
            ref = node.referenced
            if ref is None:
                return None
            if ref.kind == ck.CONSTRUCTOR:
                hit = self.allocating_prefix(self.canonical_type(node.type))
                if hit:
                    return f"allocating {hit} temporary"
            else:
                result = ref.result_type
                if (result is not None
                        and not self.is_reference_or_pointer(result)):
                    hit = self.allocating_prefix(self.canonical_type(result))
                    if hit:
                        return (f"call to `{ref.spelling}` returning "
                                f"allocating {hit} by value")
        return None

    def emit_fact(self, ref):
        """Output-emission description for a resolved call, or None."""
        name = ref.spelling
        if name == "operator<<":
            parent = ref.semantic_parent
            try:
                parent_type = normalize_type(
                    parent.type.get_canonical().spelling)
            except Exception:  # noqa: BLE001
                parent_type = ""
            if (parent_type.startswith(OSTREAM_PARENT_PREFIXES)
                    or (parent is not None
                        and parent.spelling in OSTREAM_PARENT_NAMES)):
                return "ostream operator<<"
            # Free operator<<(ostream&, T): the first parameter names it.
            try:
                args = list(ref.get_arguments())
                if args and "basic_ostream<" in normalize_type(
                        args[0].type.get_canonical().spelling):
                    return "ostream operator<<"
            except Exception:  # noqa: BLE001
                pass
            return None
        if (name in OSTREAM_METHODS
                and self.member_parent_matches(ref, OSTREAM_PARENT_PREFIXES,
                                               OSTREAM_PARENT_NAMES)):
            return f"ostream .{name}()"
        parent = ref.semantic_parent
        if parent is not None:
            try:
                parent_type = normalize_type(
                    parent.type.get_canonical().spelling)
            except Exception:  # noqa: BLE001
                parent_type = ""
            for prefix in EMITTER_CLASS_PREFIXES:
                if parent_type.startswith(prefix) or \
                        parent.spelling == prefix.rsplit("::", 1)[-1].rstrip("<"):
                    if prefix.endswith("Tracer") and \
                            not name.startswith("emit"):
                        return None
                    return f"{parent.spelling}::{name}()"
        return None

    def accum_fact(self, ref):
        """Ordered-accumulation description for a resolved call, or
        None (unordered targets and commutative arithmetic stay legal)."""
        if ref.spelling not in ACCUM_METHODS:
            return None
        if self.member_parent_matches(ref, ACCUM_PARENT_PREFIXES,
                                      ACCUM_PARENT_NAMES):
            target = ref.semantic_parent.spelling
            return f"appends to an ordered {target} (`{ref.spelling}`)"
        return None

    def unordered_range_type(self, node):
        """For a CXX_FOR_RANGE_STMT, the canonical spelling of the
        iterated container when it is an unordered std container."""
        ck = self._ck
        children = list(node.get_children())
        for child in children[:-1]:  # last child is the loop body
            if child.kind == ck.VAR_DECL:
                continue
            spelling = self.canonical_type(child.type)
            # The range expression's type keeps cv-qualifiers (and, on
            # some binding versions, the reference) of the iterated
            # container; strip them before the prefix match.
            if spelling.startswith("const "):
                spelling = spelling[len("const "):]
            spelling = spelling.rstrip(" &")
            for prefix in callgraph.UNORDERED_PREFIXES:
                if spelling.startswith(prefix):
                    return spelling.split("<", 1)[0] + "<...>"
        return None

    def unordered_iterator_decl(self, node):
        """For a FOR_STMT, true when an init declaration's canonical
        type is an unordered-container iterator (best effort: the
        libstdc++/libc++ node-iterator spellings)."""
        ck = self._ck
        children = list(node.get_children())
        if not children or children[0].kind != ck.DECL_STMT:
            return None
        for decl in children[0].get_children():
            if decl.kind != ck.VAR_DECL:
                continue
            spelling = self.canonical_type(decl.type)
            for marker in callgraph.UNORDERED_ITERATOR_MARKERS:
                if marker in spelling:
                    return "std::unordered_ (iterator loop)"
        return None

    def call_edge(self, node, try_depth):
        """(callee_usr, kind) for a resolved call to an in-tree function,
        plus any callback edges from closure-wrapper construction."""
        ck = self._ck
        ref = node.referenced
        edges = []
        if ref is None:
            return edges
        if ref.kind == ck.CONSTRUCTOR:
            parent = ref.semantic_parent
            try:
                parent_type = normalize_type(
                    parent.type.get_canonical().spelling)
            except Exception:  # noqa: BLE001
                parent_type = ""
            if parent_type.startswith(CALLBACK_WRAPPER_PREFIXES):
                # InplaceCallback/FunctionRef construction: record a
                # callback edge to every named callable in the argument
                # list (lambdas get theirs when their LAMBDA_EXPR is
                # visited). The wrapper ctor itself is the type-erasure
                # boundary — its placement-new SBO machinery is not the
                # caller's allocation, so no traversable ctor edge.
                for target in self.named_callables(node):
                    edges.append((target, "callback"))
                return edges
            if not self.is_foreign(ref):
                usr = ref.canonical.get_usr()
                if usr:
                    edges.append((usr, "ctor"))
            return edges
        if self.is_foreign(ref):
            return edges
        if ref.kind in (ck.CXX_METHOD, ck.CONVERSION_FUNCTION,
                        ck.DESTRUCTOR):
            kind = "member"
        elif ref.kind in (ck.FUNCTION_DECL, ck.FUNCTION_TEMPLATE):
            kind = "direct"
        else:
            # Call through a function pointer / member pointer: the
            # referenced decl is a field or variable, not a function —
            # unresolvable, like virtual dispatch (DESIGN.md section 16).
            return edges
        usr = ref.canonical.get_usr()
        if usr:
            edges.append((usr, kind))
        return edges

    def named_callables(self, node):
        """USRs of named functions referenced anywhere under a
        closure-wrapper construction expression."""
        ck = self._ck
        out = []

        def scan(n):
            if n.kind == ck.DECL_REF_EXPR:
                ref = n.referenced
                if ref is not None and ref.kind in (
                        ck.FUNCTION_DECL, ck.CXX_METHOD,
                        ck.FUNCTION_TEMPLATE) and not self.is_foreign(ref):
                    usr = ref.canonical.get_usr()
                    if usr:
                        out.append(usr)
            for child in n.get_children():
                scan(child)

        scan(node)
        return out

    def extract_function(self, fn_cursor, fn_path):
        """Builds the call-graph node for one in-tree function
        definition: facts (allocation, throw, escape, emission, ordered
        accumulation), call edges, and unordered-iteration loop records.
        Lambdas become their own nodes joined by callback edges — their
        bodies run on a later stack, so their facts must not be charged
        to the creating function."""
        usr = fn_cursor.get_usr()
        if not usr or usr in self.fragment:
            return
        node = callgraph.new_node(
            name=self.qualified_name(fn_cursor),
            path=fn_path,
            line=fn_cursor.location.line,
            hot=self.has_annotation(fn_cursor, HOT_ANNOTATION),
            untrusted=self.has_annotation(fn_cursor, UNTRUSTED_ANNOTATION))
        self.fragment[usr] = node
        self.collect_body(fn_cursor, node, usr, fn_path)

    def collect_body(self, fn_cursor, node, usr, fn_path):
        ck = self._ck

        def visit(n, try_depth, loops):
            rel = self.in_scope(n)
            if rel is not None and rel != fn_path:
                return  # macro expansion from another file
            kind = n.kind
            line = n.location.line
            if kind == ck.LAMBDA_EXPR:
                lam_usr = f"{usr}@lambda:{line}:{n.location.column}"
                lam = callgraph.new_node(
                    name=f"{node['name']}::<lambda:{line}>",
                    path=fn_path, line=line)
                self.fragment[lam_usr] = lam
                node["calls"].append([lam_usr, line, "callback",
                                      try_depth > 0])
                self.collect_body(n, lam, lam_usr, fn_path)
                return
            if kind == ck.CXX_TRY_STMT:
                for child in n.get_children():
                    if child.kind == ck.CXX_CATCH_STMT:
                        visit(child, try_depth, loops)
                    else:
                        visit(child, try_depth + 1, loops)
                return
            container = None
            if kind == ck.CXX_FOR_RANGE_STMT:
                container = self.unordered_range_type(n)
            elif kind == ck.FOR_STMT:
                container = self.unordered_iterator_decl(n)
            if container is not None:
                loop = [line, container, [], []]
                node["loops"].append(loop)
                for child in n.get_children():
                    visit(child, try_depth, loops + [loop])
                return
            fact = self.alloc_fact(n)
            if fact is not None:
                node["alloc_sites"].append([line, fact])
            if kind == ck.CXX_THROW_EXPR:
                children = list(n.get_children())
                if children:
                    thrown = self.canonical_type(children[0].type)
                    if thrown and not PARSE_ERROR_TYPE_RE.match(thrown):
                        node["throw_sites"].append(
                            [line, thrown, try_depth > 0])
            elif kind == ck.CALL_EXPR:
                ref = n.referenced
                if ref is not None:
                    name = ref.spelling
                    if (name == "at" and try_depth == 0
                            and self.member_parent_matches(
                                ref, AT_PARENT_PREFIXES, AT_PARENT_NAMES)):
                        node["escape_sites"].append(
                            [line, "unguarded `.at()`"])
                    elif (name in STO_FUNCTIONS and try_depth == 0
                          and self.is_foreign(ref)):
                        node["escape_sites"].append(
                            [line, f"unguarded `{name}()`"])
                    emit = self.emit_fact(ref)
                    if emit is not None:
                        node["emit_sites"].append([line, emit])
                        for loop in loops:
                            loop[2].append([line, f"emits ({emit})"])
                    accum = self.accum_fact(ref)
                    if accum is not None:
                        node["accum_sites"].append([line, accum])
                        for loop in loops:
                            loop[2].append([line, accum])
                    for callee, edge_kind in self.call_edge(n, try_depth):
                        node["calls"].append(
                            [callee, line, edge_kind, try_depth > 0])
                        for loop in loops:
                            loop[3].append([callee, line, edge_kind])
            for child in n.get_children():
                visit(child, try_depth, loops)

        for child in fn_cursor.get_children():
            visit(child, 0, [])

    # -- traversal --

    def walk(self, cursor):
        ck = self._ck
        for node in cursor.get_children():
            rel = self.in_scope(node)
            if rel is None:
                # Out-of-root subtree (system header / other repo area):
                # prune, nothing inside can produce an in-scope finding.
                continue
            self.check_global_state(node)
            self.check_types(node)
            self.check_calls(node)
            if (node.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                              ck.FUNCTION_TEMPLATE, ck.CONSTRUCTOR,
                              ck.CONVERSION_FUNCTION, ck.DESTRUCTOR)
                    and node.is_definition()):
                self.extract_function(node, rel)
                if self.has_annotation(node, HOT_ANNOTATION):
                    usr = node.get_usr()
                    if usr not in self.hot_usrs:
                        self.hot_usrs.add(usr)
                        self.check_hot_body(node, rel)
                if self.has_annotation(node, UNTRUSTED_ANNOTATION):
                    usr = node.get_usr()
                    if usr not in self.untrusted_usrs:
                        self.untrusted_usrs.add(usr)
                        self.check_untrusted_body(node, rel)
            self.walk(node)

    def analyze_tu(self, source, args):
        try:
            tu = self.index.parse(source, args=args)
        except self.cindex.TranslationUnitLoadError as e:
            print(f"dnsshield_analyze: failed to parse {source}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        errors = [d for d in tu.diagnostics if d.severity >= 3]  # Error+
        if errors:
            for d in errors[:10]:
                print(f"dnsshield_analyze: {source}: {d.spelling}",
                      file=sys.stderr)
            sys.exit(2)
        self.walk(tu.cursor)
        return tu


def tu_dependency_paths(tu, root):
    """The in-tree files a TU read: the source plus every include under
    the analysis root (system headers never key cache invalidation)."""
    abs_root = os.path.abspath(root)
    deps = {os.path.abspath(tu.spelling)}
    try:
        includes = list(tu.get_includes())
    except Exception:  # noqa: BLE001 - bindings without get_includes
        includes = []
    for inc in includes:
        try:
            path = os.path.abspath(inc.include.name)
        except AttributeError:
            continue
        if not os.path.relpath(path, abs_root).startswith(".."):
            deps.add(path)
    return deps


def run_analysis(cindex, build_dir, root, tu_prefix="src/", cache=None):
    """Parses every in-scope TU from the compilation database. Returns
    (findings, scanned, graph): the sorted finding list as
    (path, line, rule_name, message) — intraprocedural and
    interprocedural merged, after rule scoping — plus the merged
    cross-TU call graph.

    Each TU gets a fresh Analyzer so its fragment and findings are
    attributable to that TU alone (a header-defined function re-checked
    per TU dedups in the union) — the unit the cache stores and replays.
    """
    extra = resource_dir_args()
    entries = load_compile_commands(build_dir)
    scanned = 0
    seen_sources = set()
    findings = set()
    fragments = []
    for entry in entries:
        directory = entry.get("directory", ".")
        file_path = entry.get("file", "")
        source = os.path.normpath(
            file_path if os.path.isabs(file_path)
            else os.path.join(directory, file_path))
        rel = os.path.relpath(
            source, os.path.abspath(root)).replace(os.sep, "/")
        if rel.startswith("..") or not rel.startswith(tu_prefix):
            continue
        if source in seen_sources:
            continue
        seen_sources.add(source)
        command = entry.get("arguments") or entry.get("command", "")
        args = parse_args_for_tu(command, extra)
        if cache is not None:
            cached = cache.lookup(source, args)
            if cached is not None:
                fragment, tu_findings = cached
                fragments.append(fragment)
                findings.update(tu_findings)
                scanned += 1
                continue
        analyzer = Analyzer(cindex, root)
        tu = analyzer.analyze_tu(source, args)
        fragments.append(analyzer.fragment)
        findings.update(analyzer.findings)
        if cache is not None:
            cache.store(source, args, tu_dependency_paths(tu, root),
                        analyzer.fragment, sorted(analyzer.findings))
        scanned += 1
    if scanned == 0:
        print(f"dnsshield_analyze: no TUs under {tu_prefix} in the "
              f"compilation database at {build_dir}", file=sys.stderr)
        sys.exit(2)
    graph = callgraph.build_graph(fragments)
    for path, line, rule, message in \
            callgraph.interprocedural_findings(graph):
        if RULES[rule].covers(path):
            findings.add((path, line, rule, message))
    return sorted(findings), scanned, graph


def report(findings):
    for path, line, rule_name, message in findings:
        rule = RULES[rule_name]
        print(f"{path}:{line}: [{rule_name}] {message}")
        if rule.hint:
            print(f"{path}:{line}:   hint: {rule.hint}")


def main():
    parser = argparse.ArgumentParser(
        description="dnsshield AST analyzer (see module docstring)")
    parser.add_argument("-p", "--build-dir", default="build",
                        help="directory containing compile_commands.json "
                             "(default: build)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="analysis root; findings and rule scopes are "
                             "relative to it (default: the repo root). The "
                             "fixture self-test points this at "
                             "tests/analyzer_fixtures")
    parser.add_argument("--sarif", metavar="PATH",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--require-libclang", action="store_true",
                        help="treat missing libclang as an error instead of "
                             "a SKIP (CI uses this)")
    parser.add_argument("--callgraph-cache", metavar="PATH", default=None,
                        help="per-TU index cache file (default: "
                             "<build-dir>/dnsshield_callgraph_cache.json); "
                             "warm entries skip parsing entirely")
    parser.add_argument("--no-callgraph-cache", action="store_true",
                        help="parse every TU from scratch")
    parser.add_argument("--suggest-annotations", action="store_true",
                        help="print the minimal DNSSHIELD_HOT annotation "
                             "set closing the transitive-hot gap, then exit")
    parser.add_argument("--baseline", metavar="PATH", default="auto",
                        help="suppression file of `<rule> <path>` entries "
                             "(default: scripts/analysis_baseline.txt when "
                             "present; pass 'none' to disable)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the current finding set as a baseline "
                             "file and exit")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.name}: {rule.description}")
            for path in sorted(rule.allowlist):
                print(f"  allowlisted: {path}")
        sys.exit(0)

    cindex = load_cindex()
    if cindex is None:
        if args.require_libclang:
            print("dnsshield_analyze: FAIL: libclang required but "
                  "unavailable", file=sys.stderr)
            sys.exit(2)
        print("dnsshield_analyze: SKIP (libclang unavailable; the regex "
              "linter scripts/dnsshield_lint.py remains the active gate; "
              "`pip install libclang` enables this tool)")
        sys.exit(0)

    cache = None
    if not args.no_callgraph_cache:
        cache_path = args.callgraph_cache or os.path.join(
            args.build_dir, "dnsshield_callgraph_cache.json")
        script_hash = callgraph.scripts_hash(
            [os.path.abspath(__file__), os.path.abspath(callgraph.__file__)])
        cache = callgraph.IndexCache(cache_path, script_hash)

    findings, scanned, graph = run_analysis(
        cindex, args.build_dir, args.root, cache=cache)
    if cache is not None:
        cache.save()

    if args.suggest_annotations:
        sys.stdout.write(callgraph.render_suggestions(
            callgraph.suggest_annotations(graph)))
        sys.exit(0)

    if args.write_baseline:
        entries = baseline_io.write(args.write_baseline, findings)
        print(f"dnsshield_analyze: wrote {len(entries)} baseline "
              f"entr{'y' if len(entries) == 1 else 'ies'} to "
              f"{args.write_baseline}")
        sys.exit(0)

    baseline_path = args.baseline
    if baseline_path == "auto":
        default = os.path.join(REPO_ROOT, "scripts",
                               "analysis_baseline.txt")
        baseline_path = default if os.path.isfile(default) else None
    elif baseline_path == "none":
        baseline_path = None
    suppressed = []
    if baseline_path:
        try:
            entries = baseline_io.load(baseline_path)
        except (OSError, baseline_io.BaselineError) as e:
            print(f"dnsshield_analyze: bad baseline: {e}", file=sys.stderr)
            sys.exit(2)
        findings, suppressed, stale = baseline_io.apply(findings, entries)
        for rule, rel in stale:
            print(f"dnsshield_analyze: warning: stale baseline entry "
                  f"`{rule} {rel}` (suppresses nothing; remove it)",
                  file=sys.stderr)

    if args.sarif:
        from dnsshield_sarif import write_sarif
        write_sarif(args.sarif, "dnsshield_analyze",
                    [(r.name, r.description) for r in RULES.values()],
                    [(rule, message, path, line)
                     for path, line, rule, message in findings])

    cache_note = ""
    if cache is not None and (cache.hits or cache.misses):
        cache_note = f", cache {cache.hits}/{cache.hits + cache.misses} warm"
    baseline_note = f", {len(suppressed)} baselined" if suppressed else ""
    if findings:
        report(findings)
        print(f"dnsshield_analyze: {len(findings)} finding(s) across "
              f"{scanned} TU(s){baseline_note}{cache_note}",
              file=sys.stderr)
        sys.exit(1)
    print(f"dnsshield_analyze: clean ({scanned} TUs, {len(RULES)} rules"
          f"{baseline_note}{cache_note})")
    sys.exit(0)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    main()

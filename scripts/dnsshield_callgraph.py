#!/usr/bin/env python3
"""dnsshield interprocedural call graph: model, rules, and index cache.

scripts/dnsshield_analyze.py extracts one *graph fragment* per
translation unit (libclang USRs as node ids) and merges them here into a
cross-TU call graph. Everything in this module is pure Python over plain
dict/JSON data — no libclang import — so the graph semantics, the three
interprocedural rules, and the cache invalidation logic are unit-tested
by scripts/test_dnsshield_callgraph.py on machines without libclang.

Node (one per function USR)
  name          qualified display name ("EventQueue::harvest")
  path, line    repo-relative definition site ("" when only declared)
  hot           carries the DNSSHIELD_HOT annotation (any declaration)
  untrusted     carries DNSSHIELD_UNTRUSTED_INPUT
  alloc_sites   [[line, what], ...] allocation facts (new-expressions,
                allocating std locals/temporaries, by-value allocating
                returns) — the same facts the intraprocedural
                hot-path-purity rule bans
  throw_sites   [[line, type, guarded], ...] throw-expressions of
                non-`dnsshield::*Error` types; guarded = lexically
                inside a try block
  escape_sites  [[line, what], ...] unguarded .at()/sto* calls
                (std::out_of_range / std::invalid_argument escapes)
  emit_sites    [[line, what], ...] output emission (operator<< to an
                ostream, ostream write/put, JsonWriter/Tracer members)
  accum_sites   [[line, what], ...] ordered accumulation (push_back /
                emplace_back / append / operator+= on vector / deque /
                string targets)
  calls         [[callee_usr, line, kind, guarded], ...] with kind one
                of direct | member | ctor | callback (callback =
                InplaceCallback / FunctionRef construction site or a
                lambda closure created in the body)
  loops         [[line, container, sites, calls], ...] one record per
                iteration over an unordered std container; `sites` are
                the accum/emit facts inside the loop body, `calls` the
                [[callee_usr, line, kind], ...] made from it

Edge-kind semantics (DESIGN.md section 16):
  - transitive-hot-purity and exception-escape traverse direct, member,
    and ctor edges only. callback edges record closure *creation*, not
    invocation; following them from the creating function would charge
    callers with facts from closures that run on someone else's stack.
  - exception-escape additionally stops at guarded edges (call sites
    inside a try block) and at guarded throw sites. The catch type is
    not matched against the thrown type — a try { } catch (Specific&)
    silences the subtree; that unsoundness is accepted and documented.
  - callees with no node (std::, system, unresolved templates, function
    pointers) are assumed pure and non-throwing; .at()/sto* calls are
    the exception, recorded as escape facts at the call site.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

GRAPH_VERSION = 1

PARSE_ERROR_TYPE_RE = re.compile(r"^dnsshield::(?:\w+::)*\w*Error$")

# Canonical-type prefixes of the unordered std containers whose iteration
# order is hash/seed dependent.
UNORDERED_PREFIXES = (
    "std::unordered_map<",
    "std::unordered_multimap<",
    "std::unordered_set<",
    "std::unordered_multiset<",
)

# libstdc++/libc++ canonical spellings of unordered-container iterators
# (iterator-based for loops; the container type is erased by then).
UNORDERED_ITERATOR_MARKERS = (
    "std::__detail::_Node_iterator",
    "std::__detail::_Node_const_iterator",
    "std::__hash_map_iterator",
    "std::__hash_map_const_iterator",
    "std::__hash_set_iterator",
    "std::__hash_set_const_iterator",
)

EDGE_KINDS = ("direct", "member", "ctor", "callback")

# Edges the purity/exception walks follow (see module docstring).
INVOCATION_KINDS = frozenset({"direct", "member", "ctor"})


def new_node(name="", path="", line=0, hot=False, untrusted=False):
    return {
        "name": name,
        "path": path,
        "line": line,
        "hot": hot,
        "untrusted": untrusted,
        "alloc_sites": [],
        "throw_sites": [],
        "escape_sites": [],
        "emit_sites": [],
        "accum_sites": [],
        "calls": [],
        "loops": [],
    }


_LIST_KEYS = ("alloc_sites", "throw_sites", "escape_sites", "emit_sites",
              "accum_sites", "calls", "loops")


def _merge_lists(dst, src):
    """Set-unions two fact lists (JSON round-trips make tuples lists, so
    keys are canonicalised through json.dumps)."""
    seen = {json.dumps(item, sort_keys=True) for item in dst}
    for item in src:
        key = json.dumps(item, sort_keys=True)
        if key not in seen:
            seen.add(key)
            dst.append(item)
    dst.sort(key=lambda item: json.dumps(item, sort_keys=True))


def merge_fragment(graph, fragment):
    """Merges one TU's {usr: node} fragment into the cross-TU graph.

    Functions defined in headers appear in every including TU with
    identical facts; union-merging keeps one node per USR. A definition
    (non-empty path) wins over a bare declaration for the site fields.
    """
    for usr, node in fragment.items():
        have = graph.get(usr)
        if have is None:
            graph[usr] = {
                "name": node.get("name", ""),
                "path": node.get("path", ""),
                "line": node.get("line", 0),
                "hot": bool(node.get("hot")),
                "untrusted": bool(node.get("untrusted")),
                **{k: list(node.get(k, ())) for k in _LIST_KEYS},
            }
            for key in _LIST_KEYS:
                _merge_lists(graph[usr][key], [])
            continue
        if not have["path"] and node.get("path"):
            have["path"] = node["path"]
            have["line"] = node.get("line", 0)
            have["name"] = node.get("name", have["name"])
        have["hot"] = have["hot"] or bool(node.get("hot"))
        have["untrusted"] = have["untrusted"] or bool(node.get("untrusted"))
        for key in _LIST_KEYS:
            _merge_lists(have[key], node.get(key, ()))
    return graph


def build_graph(fragments):
    graph = {}
    for fragment in fragments:
        merge_fragment(graph, fragment)
    return graph


# ---- reachability -----------------------------------------------------------


def _sorted_usrs(usrs):
    return sorted(usrs)


def reachable_from(graph, roots, kinds=INVOCATION_KINDS,
                   unguarded_only=False, stop_at=None):
    """BFS over call edges. Returns {usr: parent_usr} for every node
    reached from `roots` (roots map to None). Deterministic: roots and
    edges are visited in sorted order.

    kinds            edge kinds to traverse
    unguarded_only   skip call sites inside try blocks
    stop_at          predicate(node) -> True to not traverse *through*
                     a node (it is still recorded as reached)
    """
    parent = {}
    frontier = []
    for usr in _sorted_usrs(roots):
        if usr in graph and usr not in parent:
            parent[usr] = None
            frontier.append(usr)
    while frontier:
        nxt = []
        for usr in frontier:
            node = graph[usr]
            if stop_at is not None and parent[usr] is not None \
                    and stop_at(node):
                continue
            edges = sorted(node["calls"],
                           key=lambda c: (c[0], c[1], c[2]))
            for callee, _line, kind, guarded in edges:
                if kind not in kinds:
                    continue
                if unguarded_only and guarded:
                    continue
                if callee in parent or callee not in graph:
                    continue
                parent[callee] = usr
                nxt.append(callee)
        frontier = nxt
    return parent


def call_chain(parent, usr, graph):
    """Readable `root -> a -> b` chain from the BFS parent map."""
    names = []
    cur = usr
    seen = set()
    while cur is not None and cur not in seen:
        seen.add(cur)
        node = graph.get(cur)
        names.append(node["name"] if node else cur)
        cur = parent.get(cur)
    return " -> ".join(reversed(names))


# ---- rules ------------------------------------------------------------------


def rule_transitive_hot_purity(graph):
    """Every function reachable from a DNSSHIELD_HOT root through
    invocation edges must be annotated hot itself or carry no allocation
    facts. Findings anchor at the allocation site inside the callee."""
    roots = [u for u, n in graph.items() if n["hot"]]
    parent = reachable_from(graph, roots, kinds=INVOCATION_KINDS)
    findings = []
    for usr in _sorted_usrs(parent):
        node = graph[usr]
        if node["hot"]:            # annotated: its own body already passed
            continue               # the intraprocedural hot-path rule
        if not node["path"] or not node["alloc_sites"]:
            continue
        chain = call_chain(parent, usr, graph)
        root_usr = usr
        while parent[root_usr] is not None:
            root_usr = parent[root_usr]
        root = graph[root_usr]["name"]
        for line, what in node["alloc_sites"]:
            findings.append((
                node["path"], line, "transitive-hot-purity",
                f"{what} in `{node['name']}`, reachable from DNSSHIELD_HOT "
                f"`{root}` ({chain}); annotate it DNSSHIELD_HOT or move "
                f"the allocation out of the hot closure"))
    return findings


def suggest_annotations(graph):
    """The minimal annotation set closing the transitive-hot gap: every
    function reachable from a hot root that is unannotated, defined
    in-tree, and allocation-free. Returns [(path, line, name, root), ...]
    sorted by site."""
    roots = [u for u, n in graph.items() if n["hot"]]
    parent = reachable_from(graph, roots, kinds=INVOCATION_KINDS)
    out = []
    for usr in _sorted_usrs(parent):
        node = graph[usr]
        if node["hot"] or not node["path"] or node["alloc_sites"]:
            continue
        root_usr = usr
        while parent[root_usr] is not None:
            root_usr = parent[root_usr]
        out.append((node["path"], node["line"], node["name"],
                    graph[root_usr]["name"]))
    out.sort()
    return out


def _transitive_sinks(graph, loop_calls):
    """For a loop's call list, returns (usr, kind_of_sink, site) for the
    first ordered-accumulation or emission fact reachable from it, or
    None. kind_of_sink is 'accumulation' or 'emission'."""
    roots = [c[0] for c in loop_calls if c[0] in graph]
    parent = reachable_from(graph, roots, kinds=INVOCATION_KINDS)
    for usr in _sorted_usrs(parent):
        node = graph[usr]
        if node["emit_sites"]:
            return usr, "emission", node["emit_sites"][0], parent
        if node["accum_sites"]:
            return usr, "ordered accumulation", node["accum_sites"][0], parent
    return None


def rule_determinism_order(graph):
    """Iteration over an unordered std container whose body performs (or
    reaches, through the call graph) ordered accumulation or output
    emission: the iteration order is hash/seed dependent, so the bytes
    it produces are not reproducible. Findings anchor at the loop."""
    findings = []
    for usr in _sorted_usrs(graph):
        node = graph[usr]
        if not node["path"]:
            continue
        for line, container, sites, calls in node["loops"]:
            reason = None
            if sites:
                what = sites[0][1]
                reason = f"loop body {what}"
            else:
                sink = _transitive_sinks(graph, calls)
                if sink is not None:
                    sunk_usr, kind, _site, parent = sink
                    chain = call_chain(parent, sunk_usr, graph)
                    reason = (f"loop body reaches {kind} in "
                              f"`{graph[sunk_usr]['name']}` ({chain})")
            if reason is None:
                continue
            findings.append((
                node["path"], line, "determinism-order",
                f"iteration over `{container}` in `{node['name']}`: "
                f"{reason}; unordered iteration order is hash/seed "
                f"dependent, so the emitted bytes are not reproducible"))
    return findings


def rule_exception_escape(graph):
    """No non-`dnsshield::*Error` exception may propagate out of a
    DNSSHIELD_UNTRUSTED_INPUT entry point through unannotated callees.
    Walks unguarded invocation edges from every untrusted root; annotated
    callees are their own roots (their bodies answer to the
    intraprocedural error-contract rule), so the walk stops there.
    Findings anchor at the throw/escape site inside the callee."""
    roots = [u for u, n in graph.items() if n["untrusted"]]
    parent = reachable_from(
        graph, roots, kinds=INVOCATION_KINDS, unguarded_only=True,
        stop_at=lambda n: n["untrusted"])
    findings = []
    for usr in _sorted_usrs(parent):
        node = graph[usr]
        if node["untrusted"]:      # a root (or another annotated parser):
            continue               # covered intraprocedurally
        if not node["path"]:
            continue
        root_usr = usr
        while parent[root_usr] is not None:
            root_usr = parent[root_usr]
        root = graph[root_usr]["name"]
        chain = call_chain(parent, usr, graph)
        for site in node["throw_sites"]:
            line, thrown, guarded = site
            if guarded:
                continue
            findings.append((
                node["path"], line, "exception-escape",
                f"`{node['name']}` throws `{thrown}`, which escapes "
                f"DNSSHIELD_UNTRUSTED_INPUT `{root}` ({chain}); throw the "
                f"parser's *Error type or guard the call"))
        for line, what in node["escape_sites"]:
            findings.append((
                node["path"], line, "exception-escape",
                f"{what} in `{node['name']}` lets std::out_of_range / "
                f"std::invalid_argument escape DNSSHIELD_UNTRUSTED_INPUT "
                f"`{root}` ({chain})"))
    return findings


def interprocedural_findings(graph):
    """All three rules over a merged graph, deduplicated on
    (path, line, rule): when several roots reach one site, the
    lexicographically first message (stable, root-sorted BFS) wins."""
    findings = (rule_transitive_hot_purity(graph)
                + rule_determinism_order(graph)
                + rule_exception_escape(graph))
    best = {}
    for path, line, rule, message in findings:
        key = (path, line, rule)
        if key not in best or message < best[key]:
            best[key] = message
    return sorted((p, l, r, m) for (p, l, r), m in best.items())


def render_suggestions(suggestions):
    lines = []
    for path, line, name, root in suggestions:
        lines.append(f"{path}:{line}: DNSSHIELD_HOT `{name}` "
                     f"(reachable from `{root}`)")
    if not lines:
        lines.append("suggest-annotations: hot closure fully annotated")
    return "\n".join(lines) + "\n"


# ---- incremental index cache ------------------------------------------------
#
# One cache file per build dir. Each TU entry is keyed by the hash of its
# parse arguments and a (path, mtime_ns, size, sha1) list of the in-tree
# files the TU read; a warm hit replays the stored graph fragment and
# intraprocedural findings without parsing. The whole file is discarded
# when the analyzer scripts themselves change (script_hash).

CACHE_VERSION = 1


def file_fingerprint(path):
    st = os.stat(path)
    with open(path, "rb") as f:
        digest = hashlib.sha1(f.read()).hexdigest()
    return [path, st.st_mtime_ns, st.st_size, digest]


def args_hash(args):
    return hashlib.sha1("\0".join(args).encode("utf-8")).hexdigest()


def scripts_hash(paths):
    h = hashlib.sha1()
    for path in paths:
        with open(path, "rb") as f:
            h.update(f.read())
    return h.hexdigest()


class IndexCache:
    """mtime+content-hash keyed per-TU cache of graph fragments and
    intraprocedural findings."""

    def __init__(self, path, script_hash):
        self.path = path
        self.script_hash = script_hash
        self.tus = {}
        self.hits = 0
        self.misses = 0
        self.dirty = False
        self._load()

    def _load(self):
        if self.path is None or not os.path.isfile(self.path):
            return
        try:
            with open(self.path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            return
        if (data.get("version") != CACHE_VERSION
                or data.get("script_hash") != self.script_hash):
            return  # analyzer changed: every cached result is suspect
        self.tus = data.get("tus", {})

    def _deps_fresh(self, deps):
        for path, mtime_ns, size, digest in deps:
            try:
                st = os.stat(path)
            except OSError:
                return False
            if st.st_mtime_ns == mtime_ns and st.st_size == size:
                continue  # fast path: unchanged stat, trust it
            try:
                with open(path, "rb") as f:
                    if hashlib.sha1(f.read()).hexdigest() != digest:
                        return False
            except OSError:
                return False
        return True

    def lookup(self, source, tu_args):
        """Returns (fragment, findings) on a warm hit, else None."""
        entry = self.tus.get(source)
        if entry is None or entry.get("args_hash") != args_hash(tu_args):
            self.misses += 1
            return None
        if not self._deps_fresh(entry.get("deps", ())):
            self.misses += 1
            return None
        self.hits += 1
        findings = [tuple(f) for f in entry.get("findings", ())]
        return entry.get("nodes", {}), findings

    def store(self, source, tu_args, dep_paths, fragment, findings):
        deps = []
        for path in sorted(set(dep_paths)):
            try:
                deps.append(file_fingerprint(path))
            except OSError:
                continue
        self.tus[source] = {
            "args_hash": args_hash(tu_args),
            "deps": deps,
            "nodes": fragment,
            "findings": [list(f) for f in sorted(findings)],
        }
        self.dirty = True

    def save(self):
        if self.path is None or not self.dirty:
            return
        data = {
            "version": CACHE_VERSION,
            "script_hash": self.script_hash,
            "tus": self.tus,
        }
        tmp = self.path + ".tmp"
        os.makedirs(os.path.dirname(os.path.abspath(self.path)),
                    exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f, sort_keys=True)
        os.replace(tmp, self.path)
        self.dirty = False

#!/usr/bin/env python3
"""dnsshield custom linter: simulation-correctness rules clang-tidy can't express.

The simulator's headline numbers are only trustworthy if runs are
bit-reproducible. That property is easy to lose silently: one wall-clock
read, one ambient-seeded RNG, or one float in simulated-time arithmetic
and every figure drifts between runs or platforms. This linter bans those
constructions from library code (src/**), with per-rule file allowlists
for the few deliberate exceptions.

Rules
  wall-clock   No wall-clock time sources in simulation code. All time
               flows from sim::SimTime (src/sim/time.h) via the event
               queue; std::chrono clocks, time(), gettimeofday(), and
               friends would leak host time into simulated behaviour.
  randomness   No ambient randomness. Every stochastic draw goes through
               the explicitly seeded sim::Rng; rand(), srand(),
               std::random_device, and the std engines make runs
               irreproducible (or tempt unseeded use).
  float-time   No `float` anywhere in src/. Simulated-time arithmetic uses
               the double-based sim::SimTime/Duration types; a float
               narrows 86400.0-scale timestamps below second precision.
  io           No std::cout / std::cerr / printf-family calls in library
               code. Output belongs to the metrics/tracer sinks and the
               driver binaries (bench/, examples/, tests/ are out of
               scope); stray prints corrupt machine-read report streams.
  threads      No raw threading in library code. All concurrency goes
               through the deterministic runner in src/sim/parallel.*
               (hermetic jobs, index-ordered collection); a stray
               std::thread / std::async / detach() reintroduces
               scheduling-dependent results and unjoined lifetimes.
  std-function No std::function in the hot-path layers (src/sim/,
               src/resolver/). Per-event closures use the small-buffer
               sim::InplaceCallback; std::function heap-allocates any
               capture beyond its tiny internal buffer, and the
               allocation guards in bench/micro_benchmarks.cpp hold
               these layers to zero allocations per event.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

Usage
  scripts/dnsshield_lint.py              # scan src/ under the repo root
  scripts/dnsshield_lint.py PATH...      # scan specific files/dirs instead
  scripts/dnsshield_lint.py --self-test  # prove each rule fires and passes
  scripts/dnsshield_lint.py --sarif out.sarif   # also write SARIF 2.1.0
  scripts/dnsshield_lint.py --list-rules

scripts/dnsshield_analyze.py is this linter's AST-grounded big sibling
(typedef resolution, zero comment/string false positives, hot-path
purity); when libclang is available it runs alongside this tool.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")


class Rule:
    def __init__(self, name, description, patterns, allowlist=(), hint="",
                 applies_to=()):
        self.name = name
        self.description = description
        self.patterns = [re.compile(p) for p in patterns]
        # Paths relative to the repo root, '/'-separated, exempt from this
        # rule. Keep each entry justified by a comment at the definition.
        self.allowlist = frozenset(allowlist)
        self.hint = hint
        # Optional path-prefix scope: when non-empty, the rule only applies
        # to files whose repo-relative path starts with one of these
        # prefixes (e.g. hot-path-only rules scoped to src/sim/).
        self.applies_to = tuple(applies_to)


# A banned identifier must not be glued to a preceding word character,
# member access, or scope qualifier ('.' '->' '::'), so `ev.time`,
# `q->time`, and `sim_time(` stay legal while a bare `time(` is caught.
_CALL = r"(?<![\w.:>])"

RULES = [
    Rule(
        "wall-clock",
        "wall-clock time source in simulation code (use sim::SimTime via "
        "the event queue)",
        [
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)",
            _CALL + r"(time|gettimeofday|clock_gettime|clock)\s*\(",
            _CALL + r"(localtime|gmtime|mktime|strftime|ctime)(_r|_s)?\s*\(",
        ],
        allowlist=(),
        hint="derive every timestamp from sim::SimTime / EventQueue::now()",
    ),
    Rule(
        "randomness",
        "ambient randomness in simulation code (use the explicitly seeded "
        "sim::Rng)",
        [
            _CALL + r"(rand|srand|random|srandom|drand48)\s*\(",
            r"std::random_device",
            r"std::(mt19937(_64)?|default_random_engine|minstd_rand0?|"
            r"ranlux\w+|knuth_b)",
        ],
        allowlist=(),
        hint="draw from sim::Rng (seed it; derive streams with derive_seed)",
    ),
    Rule(
        "float-time",
        "`float` in library code (simulated-time arithmetic must use the "
        "double-based types from src/sim/time.h)",
        [r"(?<![\w])float(?![\w])"],
        allowlist=(),
        hint="use sim::SimTime / sim::Duration (or double) instead",
    ),
    Rule(
        "io",
        "direct console output in library code (metrics/tracer sinks and "
        "driver binaries only)",
        [
            r"std::cout|std::cerr",
            _CALL + r"(printf|fprintf|puts|fputs|putchar|perror)\s*\(",
        ],
        allowlist=(
            # The audit failure handler prints the failing invariant right
            # before the process aborts; there is no report stream to
            # corrupt at that point.
            "src/sim/audit.cpp",
        ),
        hint="return strings / write through metrics sinks; printing is the "
        "drivers' job",
    ),
    Rule(
        "threads",
        "raw threading in library code (all concurrency goes through the "
        "deterministic runner in src/sim/parallel.*)",
        [
            r"std::(thread|jthread)(?![\w])",
            r"std::async(?![\w])",
            r"(\.|->)\s*detach\s*\(",
        ],
        allowlist=(
            # The deterministic parallel runner IS the sanctioned home of
            # std::thread; everything else uses its ThreadPool/parallel_map.
            "src/sim/parallel.h",
            "src/sim/parallel.cpp",
        ),
        hint="use sim::ThreadPool / sim::parallel_map (src/sim/parallel.h)",
    ),
    Rule(
        "std-function",
        "std::function in hot-path simulation code (the event and resolver "
        "layers run millions of closures per simulated week; std::function "
        "heap-allocates any capture beyond its tiny internal buffer)",
        [r"std::function(?![\w])"],
        # Scoped to the layers the allocation budget covers; trace/metrics
        # sinks and driver code may keep std::function's flexibility.
        applies_to=("src/sim/", "src/resolver/"),
        allowlist=(
            # QueryLog is a diagnostic observer, off in experiments; one
            # move per set_query_log call, never touched per event.
            "src/resolver/caching_server.h",
            # The thread pool hands one task object to a whole job batch;
            # that is once per experiment replica, not once per event.
            "src/sim/parallel.h",
            "src/sim/parallel.cpp",
        ),
        hint="use sim::InplaceCallback (EventQueue::Callback) for per-event "
        "closures",
    ),
]


def strip_comments_and_strings(text):
    """Blank out comments, string literals, and char literals.

    Replaced characters become spaces (newlines survive), so reported
    line numbers match the original file. Handles //, /* */, "...",
    '...', and R"delim(...)delim" raw strings.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n if end == -1 else end + len(closer)
            for j in range(i, end):
                out.append("\n" if text[j] == "\n" else " ")
            i = end
        elif c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def relpath(path):
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


def scan_text(display_path, text):
    """Returns a list of (path, line, rule, matched_text) violations."""
    stripped = strip_comments_and_strings(text)
    violations = []
    for rule in RULES:
        if display_path in rule.allowlist:
            continue
        if rule.applies_to and not display_path.startswith(rule.applies_to):
            continue
        for pattern in rule.patterns:
            for m in pattern.finditer(stripped):
                line = stripped.count("\n", 0, m.start()) + 1
                violations.append((display_path, line, rule, m.group(0).strip()))
    violations.sort(key=lambda v: (v[0], v[1]))
    return violations


def scan_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            return scan_text(relpath(path), f.read())
    except OSError as e:
        print(f"dnsshield_lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"dnsshield_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def report(violations):
    for path, line, rule, matched in violations:
        print(f"{path}:{line}: [{rule.name}] {rule.description}: `{matched}`")
        if rule.hint:
            print(f"{path}:{line}:   hint: {rule.hint}")


# ---- self-test --------------------------------------------------------------

# One violating and one clean snippet per rule. The violating snippet must
# trip exactly its own rule; the clean one must pass every rule (it shows
# the approved replacement idiom). An optional fourth element places the
# snippets under a specific directory, for rules scoped via applies_to
# (the default src/selftest/ location is outside every scope).
SELF_TEST_CASES = [
    (
        "wall-clock",
        "#include <chrono>\n"
        "double stamp() { return std::chrono::system_clock::now()"
        ".time_since_epoch().count(); }\n",
        "double stamp(const dnsshield::sim::EventQueue& q) { return q.now(); }\n",
    ),
    (
        "wall-clock",
        "#include <ctime>\n"
        "long stamp() { return time(nullptr); }\n",
        "// resolution time (seconds) is simulated, never read from the host\n"
        "double stamp(dnsshield::sim::SimTime now) { return now; }\n",
    ),
    (
        "randomness",
        "#include <cstdlib>\n"
        "int roll() { return rand() % 6; }\n",
        "#include \"sim/rng.h\"\n"
        "std::uint64_t roll(dnsshield::sim::Rng& rng) "
        "{ return rng.next_below(6); }\n",
    ),
    (
        "randomness",
        "#include <random>\n"
        "std::uint64_t seed() { return std::random_device{}(); }\n",
        "#include \"sim/rng.h\"\n"
        "std::uint64_t seed(std::uint64_t master, std::uint64_t i) "
        "{ return dnsshield::sim::derive_seed(master, i); }\n",
    ),
    (
        "float-time",
        "float elapsed(float start, float end) { return end - start; }\n",
        "#include \"sim/time.h\"\n"
        "dnsshield::sim::Duration elapsed(dnsshield::sim::SimTime start,\n"
        "                                 dnsshield::sim::SimTime end) "
        "{ return end - start; }\n",
    ),
    (
        "io",
        "#include <iostream>\n"
        "void log_hit() { std::cout << \"hit\\n\"; }\n",
        "#include <string>\n"
        "std::string log_hit() { return \"hit\"; }  // caller decides the sink\n",
    ),
    (
        "threads",
        "#include <thread>\n"
        "void fire() { std::thread t([] {}); t.detach(); }\n",
        "#include \"sim/parallel.h\"\n"
        "std::vector<std::size_t> squares(std::size_t n, std::size_t jobs) {\n"
        "  return dnsshield::sim::parallel_map<std::size_t>(\n"
        "      n, jobs, [](std::size_t i) { return i * i; });\n"
        "}\n",
    ),
    (
        "std-function",
        "#include <functional>\n"
        "struct Timer { std::function<void()> on_fire; };\n",
        "#include \"sim/inplace_callback.h\"\n"
        "struct Timer { dnsshield::sim::InplaceCallback on_fire; };\n",
        "src/sim",
    ),
]


def self_test():
    failures = []
    for case in SELF_TEST_CASES:
        rule_name, bad, good = case[:3]
        base = case[3] if len(case) > 3 else "src/selftest"
        bad_hits = scan_text(base + "/violation.cpp", bad)
        if not any(v[2].name == rule_name for v in bad_hits):
            failures.append(f"rule {rule_name}: violating snippet not flagged")
        good_hits = scan_text(base + "/clean.cpp", good)
        if good_hits:
            failures.append(
                f"rule {rule_name}: clean snippet flagged: "
                + "; ".join(f"[{v[2].name}] `{v[3]}`" for v in good_hits)
            )

    # Allowlists actually exempt: the audit failure handler may fprintf.
    allowed = scan_text("src/sim/audit.cpp", "void f() { std::fprintf(stderr, \"x\"); }\n")
    if any(v[2].name == "io" for v in allowed):
        failures.append("io allowlist for src/sim/audit.cpp not honoured")

    # ... and the parallel runner may spawn std::thread.
    allowed = scan_text(
        "src/sim/parallel.cpp",
        "void f() { std::thread t([] {}); t.join(); }\n",
    )
    if any(v[2].name == "threads" for v in allowed):
        failures.append("threads allowlist for src/sim/parallel.cpp not honoured")

    # ... and the caching server header may keep its std::function QueryLog.
    allowed = scan_text(
        "src/resolver/caching_server.h",
        "using QueryLog = std::function<void(const Exchange&)>;\n",
    )
    if any(v[2].name == "std-function" for v in allowed):
        failures.append(
            "std-function allowlist for src/resolver/caching_server.h "
            "not honoured")

    # Scoped rules must not fire outside their applies_to prefixes: the
    # trace reader's std::function sinks are fine where they are.
    out_of_scope = scan_text(
        "src/trace/selftest_sink.h",
        "#include <functional>\n"
        "using Sink = std::function<void(int)>;\n",
    )
    if any(v[2].name == "std-function" for v in out_of_scope):
        failures.append("std-function fired outside its applies_to scope")

    # Comments and strings must not trip rules (classic false positives).
    commented = scan_text(
        "src/selftest/comments.cpp",
        "// resolution time (seconds); system_clock is banned, rand() too\n"
        "/* float would narrow; std::cout belongs to drivers */\n"
        "const char* kDoc = \"call time(nullptr) and rand() at home\";\n",
    )
    if commented:
        failures.append(
            "comment/string text tripped rules: "
            + "; ".join(f"[{v[2].name}] `{v[3]}`" for v in commented)
        )

    # End-to-end through the file API: a seeded violation in a temp tree
    # must fail the scan (the acceptance criterion's "demonstrably fail").
    with tempfile.TemporaryDirectory() as tmp:
        seeded = os.path.join(tmp, "seeded_violation.cpp")
        with open(seeded, "w", encoding="utf-8") as f:
            f.write("long now() { return time(nullptr); }\n")
        if not scan_file(seeded):
            failures.append("seeded violation file passed the file-API scan")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"dnsshield_lint self-test: {len(SELF_TEST_CASES)} rule cases + "
          "allowlist + comment-stripping + seeded-file checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="dnsshield custom linter (see module docstring)")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to scan (default: src/ at repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a violation and "
                             "passes on the approved idiom")
    parser.add_argument("--sarif", metavar="PATH",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--baseline", metavar="PATH", default="auto",
                        help="suppression file of `<rule> <path>` entries, "
                             "shared with dnsshield_analyze.py (default: "
                             "scripts/analysis_baseline.txt when present; "
                             "pass 'none' to disable)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.description}")
            for path in sorted(rule.allowlist):
                print(f"  allowlisted: {path}")
        sys.exit(0)

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    violations = []
    for path in collect_files(paths):
        violations.extend(scan_file(path))

    baseline_path = args.baseline
    if baseline_path == "auto":
        default = os.path.join(REPO_ROOT, "scripts", "analysis_baseline.txt")
        baseline_path = default if os.path.isfile(default) else None
    elif baseline_path == "none":
        baseline_path = None
    if baseline_path:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import dnsshield_baseline as baseline_io
        try:
            entries = baseline_io.load(baseline_path)
        except (OSError, baseline_io.BaselineError) as e:
            print(f"dnsshield_lint: bad baseline: {e}", file=sys.stderr)
            sys.exit(2)
        violations, _suppressed, stale = baseline_io.apply(
            violations, entries, key=lambda v: (v[2].name, v[0]))
        # A baseline shared with the analyzer names rules this linter
        # doesn't own; only entries for our rules can be stale here.
        own_rules = {rule.name for rule in RULES}
        for rule, rel in stale:
            if rule in own_rules:
                print(f"dnsshield_lint: warning: stale baseline entry "
                      f"`{rule} {rel}` (suppresses nothing; remove it)",
                      file=sys.stderr)

    if args.sarif:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from dnsshield_sarif import write_sarif
        write_sarif(
            args.sarif, "dnsshield_lint",
            [(rule.name, rule.description) for rule in RULES],
            [(rule.name, f"{rule.description}: `{matched}`", path, line)
             for path, line, rule, matched in violations])
    if violations:
        report(violations)
        print(f"dnsshield_lint: {len(violations)} violation(s)", file=sys.stderr)
        sys.exit(1)
    print("dnsshield_lint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()

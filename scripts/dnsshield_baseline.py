#!/usr/bin/env python3
"""Shared --baseline suppression files for the dnsshield analyzers.

Both scripts/dnsshield_analyze.py and scripts/dnsshield_lint.py accept
`--baseline FILE`: a committed list of intentional exceptions, so a
deliberate finding is recorded in-repo (with a reviewable justification
comment) instead of edited into the tools' inline allowlists.

Format — one entry per line, '#' comments and blank lines ignored:

    <rule-name> <repo-relative-path>     # why this exception is OK

An entry suppresses every finding of that rule in that file. Entries
that suppress nothing are reported as STALE (warning, not an error) so
fixed findings leave no dead suppressions behind; `--write-baseline`
regenerates the file from the current finding set.
"""

from __future__ import annotations

import os


class BaselineError(ValueError):
    pass


def load(path):
    """Parses a baseline file into a set of (rule, path) entries."""
    entries = set()
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise BaselineError(
                    f"{path}:{lineno}: expected `<rule> <path>`, got: "
                    f"{raw.strip()}")
            entries.add((parts[0], parts[1].replace(os.sep, "/")))
    return entries


def apply(findings, entries, key=lambda f: (f[2], f[0])):
    """Splits findings into (kept, suppressed) against baseline entries
    and reports stale entries that matched nothing.

    `key` maps one finding to its (rule, path) pair; the default fits
    the analyzer's (path, line, rule, message) tuples.

    Returns (kept, suppressed, stale) with stale sorted.
    """
    kept, suppressed, used = [], [], set()
    for finding in findings:
        entry = key(finding)
        if entry in entries:
            suppressed.append(finding)
            used.add(entry)
        else:
            kept.append(finding)
    stale = sorted(entries - used)
    return kept, suppressed, stale


def write(path, findings, key=lambda f: (f[2], f[0]), header=""):
    """Writes a baseline covering the given findings (one line per
    distinct (rule, path) pair)."""
    entries = sorted({key(f) for f in findings})
    with open(path, "w", encoding="utf-8") as f:
        f.write("# dnsshield analyzer/linter baseline: intentional rule "
                "exceptions.\n"
                "# Format: <rule-name> <repo-relative-path>  # justification\n"
                "# Regenerate with --write-baseline; stale entries warn.\n")
        if header:
            f.write(header.rstrip("\n") + "\n")
        for rule, rel in entries:
            f.write(f"{rule} {rel}\n")
    return entries

#!/usr/bin/env python3
"""Pure-python self-test for the interprocedural call-graph layer.

scripts/dnsshield_callgraph.py holds everything downstream of libclang
extraction — fragment merge, reachability, the three interprocedural
rules, suggestion rendering, and the incremental index cache — as plain
functions over dict/JSON data. This driver exercises them on synthetic
graphs and fake file trees, so the semantics are pinned on every
machine (the libclang extraction half is covered by
scripts/test_dnsshield_analyze.py where clang bindings exist).
scripts/dnsshield_baseline.py rides along for the shared --baseline
mechanism.

Exit status: 0 pass, 1 failure (standard unittest).
"""

from __future__ import annotations

import os
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, SCRIPTS_DIR)

import dnsshield_baseline as baseline  # noqa: E402
import dnsshield_callgraph as cg  # noqa: E402


def node(name, path="src/x.cpp", line=1, hot=False, untrusted=False,
         **lists):
    n = cg.new_node(name=name, path=path, line=line, hot=hot,
                    untrusted=untrusted)
    for key, value in lists.items():
        n[key] = value
    return n


def call(callee, line=10, kind="direct", guarded=False):
    return [callee, line, kind, guarded]


class MergeTest(unittest.TestCase):
    def test_definition_wins_over_declaration(self):
        decl = {"u:f": node("f", path="", line=0)}
        defn = {"u:f": node("f", path="src/a.cpp", line=7)}
        graph = cg.build_graph([decl, defn])
        self.assertEqual(graph["u:f"]["path"], "src/a.cpp")
        self.assertEqual(graph["u:f"]["line"], 7)

    def test_header_function_facts_union_dedup(self):
        tu1 = {"u:f": node("f", alloc_sites=[[3, "new-expression"]],
                           calls=[call("u:g")])}
        tu2 = {"u:f": node("f", alloc_sites=[[3, "new-expression"]],
                           calls=[call("u:g"), call("u:h")])}
        graph = cg.build_graph([tu1, tu2])
        self.assertEqual(graph["u:f"]["alloc_sites"],
                         [[3, "new-expression"]])
        self.assertEqual(len(graph["u:f"]["calls"]), 2)

    def test_annotations_or_across_tus(self):
        graph = cg.build_graph([{"u:f": node("f", hot=True)},
                                {"u:f": node("f")}])
        self.assertTrue(graph["u:f"]["hot"])
        graph = cg.build_graph([{"u:f": node("f")},
                                {"u:f": node("f", untrusted=True)}])
        self.assertTrue(graph["u:f"]["untrusted"])


class ReachabilityTest(unittest.TestCase):
    def graph(self):
        return cg.build_graph([{
            "u:root": node("root", hot=True,
                           calls=[call("u:mid"),
                                  call("u:cb", kind="callback")]),
            "u:mid": node("mid", calls=[call("u:leaf", kind="member")]),
            "u:leaf": node("leaf"),
            "u:cb": node("cb"),
            "u:island": node("island"),
        }])

    def test_bfs_and_parents(self):
        parent = cg.reachable_from(self.graph(), ["u:root"])
        self.assertEqual(parent["u:root"], None)
        self.assertEqual(parent["u:mid"], "u:root")
        self.assertEqual(parent["u:leaf"], "u:mid")
        self.assertNotIn("u:island", parent)

    def test_callback_edges_not_traversed(self):
        parent = cg.reachable_from(self.graph(), ["u:root"])
        self.assertNotIn("u:cb", parent)

    def test_unguarded_only_skips_guarded_edges(self):
        graph = cg.build_graph([{
            "u:root": node("root", calls=[call("u:g", guarded=True),
                                          call("u:h")]),
            "u:g": node("g"), "u:h": node("h"),
        }])
        parent = cg.reachable_from(graph, ["u:root"], unguarded_only=True)
        self.assertNotIn("u:g", parent)
        self.assertIn("u:h", parent)

    def test_stop_at_reaches_but_does_not_traverse(self):
        graph = cg.build_graph([{
            "u:root": node("root", untrusted=True, calls=[call("u:own")]),
            "u:own": node("own", untrusted=True, calls=[call("u:deep")]),
            "u:deep": node("deep"),
        }])
        parent = cg.reachable_from(graph, ["u:root"],
                                   stop_at=lambda n: n["untrusted"])
        # The annotated callee is reached (recorded) but the walk stops
        # there; the root itself always expands.
        self.assertIn("u:own", parent)
        self.assertNotIn("u:deep", parent)

    def test_call_chain(self):
        graph = self.graph()
        parent = cg.reachable_from(graph, ["u:root"])
        self.assertEqual(cg.call_chain(parent, "u:leaf", graph),
                         "root -> mid -> leaf")


class TransitiveHotPurityTest(unittest.TestCase):
    def test_finding_at_alloc_site_through_pure_middles(self):
        graph = cg.build_graph([{
            "u:hot": node("hot", hot=True, calls=[call("u:mid")]),
            "u:mid": node("mid", calls=[call("u:leaf")]),
            "u:leaf": node("leaf", path="src/leaf.cpp",
                           alloc_sites=[[42, "new-expression"]]),
        }])
        findings = cg.rule_transitive_hot_purity(graph)
        self.assertEqual(len(findings), 1)
        path, line, rule, msg = findings[0]
        self.assertEqual((path, line, rule),
                         ("src/leaf.cpp", 42, "transitive-hot-purity"))
        self.assertIn("hot -> mid -> leaf", msg)
        self.assertIn("new-expression", msg)

    def test_annotated_callee_exempt(self):
        graph = cg.build_graph([{
            "u:hot": node("hot", hot=True, calls=[call("u:leaf")]),
            "u:leaf": node("leaf", hot=True,
                           alloc_sites=[[42, "new-expression"]]),
        }])
        self.assertEqual(cg.rule_transitive_hot_purity(graph), [])

    def test_unreachable_allocator_silent(self):
        graph = cg.build_graph([{
            "u:hot": node("hot", hot=True),
            "u:cold": node("cold", alloc_sites=[[9, "new-expression"]]),
        }])
        self.assertEqual(cg.rule_transitive_hot_purity(graph), [])

    def test_ctor_edges_traversed(self):
        graph = cg.build_graph([{
            "u:hot": node("hot", hot=True,
                          calls=[call("u:ctor", kind="ctor")]),
            "u:ctor": node("Thing::Thing", path="src/t.cpp",
                           alloc_sites=[[5, "new-expression"]]),
        }])
        findings = cg.rule_transitive_hot_purity(graph)
        self.assertEqual([(f[0], f[1], f[2]) for f in findings],
                         [("src/t.cpp", 5, "transitive-hot-purity")])


class SuggestAnnotationsTest(unittest.TestCase):
    def test_minimal_set_is_pure_reachable_unannotated(self):
        graph = cg.build_graph([{
            "u:hot": node("hot", hot=True, calls=[call("u:mid")]),
            "u:mid": node("mid", path="src/m.cpp", line=12,
                          calls=[call("u:leaf")]),
            "u:leaf": node("leaf", path="src/l.cpp", line=3,
                           alloc_sites=[[4, "new-expression"]]),
        }])
        self.assertEqual(cg.suggest_annotations(graph),
                         [("src/m.cpp", 12, "mid", "hot")])

    def test_render(self):
        text = cg.render_suggestions([("src/m.cpp", 12, "mid", "hot")])
        self.assertEqual(
            text,
            "src/m.cpp:12: DNSSHIELD_HOT `mid` (reachable from `hot`)\n")
        self.assertEqual(
            cg.render_suggestions([]),
            "suggest-annotations: hot closure fully annotated\n")


class DeterminismOrderTest(unittest.TestCase):
    def test_direct_sink_in_loop_body(self):
        graph = cg.build_graph([{
            "u:f": node("f", path="src/f.cpp", loops=[
                [20, "std::unordered_map<...>",
                 [[21, "appends to an ordered vector (`push_back`)"]], []],
            ]),
        }])
        findings = cg.rule_determinism_order(graph)
        self.assertEqual([(f[0], f[1], f[2]) for f in findings],
                         [("src/f.cpp", 20, "determinism-order")])
        self.assertIn("push_back", findings[0][3])

    def test_transitive_sink_through_call_graph(self):
        graph = cg.build_graph([{
            "u:f": node("f", path="src/f.cpp", loops=[
                [20, "std::unordered_set<...>", [],
                 [["u:emit", 21, "direct"]]],
            ]),
            "u:emit": node("emit", path="src/e.cpp",
                           emit_sites=[[7, "ostream operator<<"]]),
        }])
        findings = cg.rule_determinism_order(graph)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0][1], 20)
        self.assertIn("reaches emission in `emit`", findings[0][3])

    def test_loop_without_sinks_silent(self):
        graph = cg.build_graph([{
            "u:f": node("f", path="src/f.cpp", loops=[
                [20, "std::unordered_map<...>", [],
                 [["u:pure", 21, "direct"]]],
            ]),
            "u:pure": node("pure", path="src/p.cpp"),
        }])
        self.assertEqual(cg.rule_determinism_order(graph), [])


class ExceptionEscapeTest(unittest.TestCase):
    def test_unguarded_throw_through_chain(self):
        graph = cg.build_graph([{
            "u:entry": node("entry", untrusted=True, calls=[call("u:h")]),
            "u:h": node("h", path="src/h.cpp",
                        throw_sites=[[30, "std::runtime_error", False]]),
        }])
        findings = cg.rule_exception_escape(graph)
        self.assertEqual([(f[0], f[1], f[2]) for f in findings],
                         [("src/h.cpp", 30, "exception-escape")])
        self.assertIn("std::runtime_error", findings[0][3])
        self.assertIn("entry", findings[0][3])

    def test_guarded_call_site_silent(self):
        graph = cg.build_graph([{
            "u:entry": node("entry", untrusted=True,
                            calls=[call("u:h", guarded=True)]),
            "u:h": node("h", path="src/h.cpp",
                        throw_sites=[[30, "std::runtime_error", False]]),
        }])
        self.assertEqual(cg.rule_exception_escape(graph), [])

    def test_guarded_throw_site_silent(self):
        graph = cg.build_graph([{
            "u:entry": node("entry", untrusted=True, calls=[call("u:h")]),
            "u:h": node("h", path="src/h.cpp",
                        throw_sites=[[30, "std::runtime_error", True]]),
        }])
        self.assertEqual(cg.rule_exception_escape(graph), [])

    def test_escape_sites_reported(self):
        graph = cg.build_graph([{
            "u:entry": node("entry", untrusted=True, calls=[call("u:h")]),
            "u:h": node("h", path="src/h.cpp",
                        escape_sites=[[8, "unguarded `.at()`"]]),
        }])
        findings = cg.rule_exception_escape(graph)
        self.assertEqual(findings[0][:3], ("src/h.cpp", 8,
                                           "exception-escape"))

    def test_annotated_callee_is_its_own_contract(self):
        graph = cg.build_graph([{
            "u:entry": node("entry", untrusted=True, calls=[call("u:own")]),
            "u:own": node("own", untrusted=True, path="src/o.cpp",
                          calls=[call("u:deep")],
                          throw_sites=[[5, "std::runtime_error", False]]),
            "u:deep": node("deep", path="src/d.cpp",
                           throw_sites=[[6, "std::runtime_error", False]]),
        }])
        findings = cg.rule_exception_escape(graph)
        # `own`'s body answers to the intraprocedural error-contract
        # rule (its own throw is not re-reported here), and no chain is
        # attributed *through* it to `entry` — but `own` is an entry
        # point itself, so `deep`'s throw violates `own`'s contract.
        self.assertEqual([(f[0], f[1], f[2]) for f in findings],
                         [("src/d.cpp", 6, "exception-escape")])
        self.assertIn("`own` (own -> deep)", findings[0][3])


class DedupTest(unittest.TestCase):
    def test_two_roots_one_site_single_finding(self):
        graph = cg.build_graph([{
            "u:a_hot": node("a_hot", hot=True, calls=[call("u:leaf")]),
            "u:b_hot": node("b_hot", hot=True, calls=[call("u:leaf")]),
            "u:leaf": node("leaf", path="src/l.cpp",
                           alloc_sites=[[4, "new-expression"]]),
        }])
        findings = cg.interprocedural_findings(graph)
        self.assertEqual(len(findings), 1)
        # Root-sorted BFS makes the kept message deterministic: the
        # lexicographically smallest (here via root `a_hot`).
        self.assertIn("a_hot", findings[0][3])


class BaselineTest(unittest.TestCase):
    def test_round_trip_apply_and_stale(self):
        findings = [
            ("src/a.cpp", 1, "io", "printf"),
            ("src/b.cpp", 2, "io", "printf"),
            ("src/a.cpp", 3, "threads", "std::thread"),
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.txt")
            baseline.write(path, findings[:1])
            entries = baseline.load(path)
            self.assertEqual(entries, {("io", "src/a.cpp")})
            kept, suppressed, stale = baseline.apply(findings, entries)
            self.assertEqual([f[0] for f in suppressed], ["src/a.cpp"])
            self.assertEqual(len(kept), 2)
            self.assertEqual(stale, [])
            # An entry matching nothing is stale, not an error.
            entries.add(("io", "src/gone.cpp"))
            _kept, _sup, stale = baseline.apply(findings, entries)
            self.assertEqual(stale, [("io", "src/gone.cpp")])

    def test_comments_and_malformed(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.txt")
            with open(path, "w", encoding="utf-8") as f:
                f.write("# comment only\n\nio src/a.cpp  # justified\n")
            self.assertEqual(baseline.load(path), {("io", "src/a.cpp")})
            with open(path, "w", encoding="utf-8") as f:
                f.write("io\n")
            with self.assertRaises(baseline.BaselineError):
                baseline.load(path)


class IndexCacheTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        self.source = os.path.join(self.dir, "a.cpp")
        self.header = os.path.join(self.dir, "a.h")
        for path, text in ((self.source, "int f() { return 1; }\n"),
                           (self.header, "int f();\n")):
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        self.cache_path = os.path.join(self.dir, "cache.json")
        self.args = ["clang++", "-std=c++20", "-c", self.source]
        self.fragment = {"u:f": node("f", path="src/a.cpp", line=1)}
        self.findings = [("src/a.cpp", 1, "io", "printf")]

    def tearDown(self):
        self.tmp.cleanup()

    def fresh(self, script_hash="h1"):
        return cg.IndexCache(self.cache_path, script_hash)

    def populate(self):
        cache = self.fresh()
        self.assertIsNone(cache.lookup(self.source, self.args))
        cache.store(self.source, self.args, [self.source, self.header],
                    self.fragment, self.findings)
        cache.save()

    def test_warm_hit_replays_fragment_and_findings(self):
        self.populate()
        cache = self.fresh()
        got = cache.lookup(self.source, self.args)
        self.assertIsNotNone(got)
        fragment, findings = got
        self.assertEqual(findings, self.findings)  # tuples restored
        self.assertEqual(fragment["u:f"]["name"], "f")
        self.assertEqual((cache.hits, cache.misses), (1, 0))

    def test_touched_unchanged_dep_still_hits_via_content_hash(self):
        self.populate()
        st = os.stat(self.header)
        os.utime(self.header, ns=(st.st_atime_ns + 10**9,
                                  st.st_mtime_ns + 10**9))
        cache = self.fresh()
        self.assertIsNotNone(cache.lookup(self.source, self.args))

    def test_edited_dep_misses(self):
        self.populate()
        with open(self.header, "w", encoding="utf-8") as f:
            f.write("int f();  // edited\n")
        cache = self.fresh()
        self.assertIsNone(cache.lookup(self.source, self.args))
        self.assertEqual(cache.misses, 1)

    def test_deleted_dep_misses(self):
        self.populate()
        os.remove(self.header)
        self.assertIsNone(self.fresh().lookup(self.source, self.args))

    def test_changed_args_miss(self):
        self.populate()
        other = self.args + ["-DX"]
        self.assertIsNone(self.fresh().lookup(self.source, other))

    def test_script_change_discards_whole_cache(self):
        self.populate()
        cache = self.fresh(script_hash="h2")
        self.assertEqual(cache.tus, {})
        self.assertIsNone(cache.lookup(self.source, self.args))

    def test_corrupt_cache_file_ignored(self):
        with open(self.cache_path, "w", encoding="utf-8") as f:
            f.write("{not json")
        cache = self.fresh()
        self.assertEqual(cache.tus, {})


if __name__ == "__main__":
    unittest.main(verbosity=1)
